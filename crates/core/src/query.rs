//! Query types: HC-s-t path queries (the user-facing batch) and HC-s path queries (the
//! shared sub-structure of Definition 4.2).

use hcsp_graph::{Direction, VertexId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an HC-s-t path query inside a batch (its position in the input slice).
pub type QueryId = usize;

/// A hop-constrained s-t simple path query `q(s, t, k)`.
///
/// The answer is every simple path from `s` to `t` with at most `k` hops (edges).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PathQuery {
    /// Source vertex `s`.
    pub source: VertexId,
    /// Target vertex `t`.
    pub target: VertexId,
    /// Hop constraint `k` (maximum number of edges on a returned path).
    pub hop_limit: u32,
}

impl PathQuery {
    /// Creates a query from raw ids.
    pub fn new(source: impl Into<VertexId>, target: impl Into<VertexId>, hop_limit: u32) -> Self {
        PathQuery {
            source: source.into(),
            target: target.into(),
            hop_limit,
        }
    }

    /// Hop budget of the forward half of the bidirectional search, `⌈k/2⌉`.
    #[inline]
    pub fn forward_budget(&self) -> u32 {
        self.hop_limit.div_ceil(2)
    }

    /// Hop budget of the backward half of the bidirectional search, `⌊k/2⌋`.
    #[inline]
    pub fn backward_budget(&self) -> u32 {
        self.hop_limit / 2
    }

    /// Hop budget of the half search in the given direction.
    #[inline]
    pub fn budget(&self, dir: Direction) -> u32 {
        match dir {
            Direction::Forward => self.forward_budget(),
            Direction::Backward => self.backward_budget(),
        }
    }

    /// The root vertex of the half search in the given direction (`s` forward, `t` backward).
    #[inline]
    pub fn root(&self, dir: Direction) -> VertexId {
        match dir {
            Direction::Forward => self.source,
            Direction::Backward => self.target,
        }
    }

    /// The "anchor" the half search is heading towards (`t` forward, `s` backward); pruning
    /// compares remaining budget against the indexed distance to this anchor.
    #[inline]
    pub fn anchor(&self, dir: Direction) -> VertexId {
        match dir {
            Direction::Forward => self.target,
            Direction::Backward => self.source,
        }
    }

    /// The HC-s path query representing this query's half search in direction `dir`
    /// (`q_{s,⌈k/2⌉,G}` or `q_{t,⌊k/2⌋,G^r}`).
    pub fn half_query(&self, dir: Direction) -> HcsQuery {
        HcsQuery {
            root: self.root(dir),
            budget: self.budget(dir),
            direction: dir,
        }
    }
}

impl fmt::Display for PathQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q({}, {}, {})", self.source, self.target, self.hop_limit)
    }
}

/// An HC-s path query `q_{v,k,G}` (Definition 4.2): all simple paths starting from `root`
/// with at most `budget` hops in the given direction (`Forward` = on `G`, `Backward` = on
/// `G^r`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HcsQuery {
    /// The single source vertex the paths start from.
    pub root: VertexId,
    /// Maximum number of hops of an enumerated path.
    pub budget: u32,
    /// Which graph the paths live on: `Forward` for `G`, `Backward` for `G^r`.
    pub direction: Direction,
}

impl HcsQuery {
    /// Creates an HC-s path query.
    pub fn new(root: impl Into<VertexId>, budget: u32, direction: Direction) -> Self {
        HcsQuery {
            root: root.into(),
            budget,
            direction,
        }
    }

    /// HC-s path query domination `≺` (Definition 4.3): `self ≺ other` when `self` is
    /// rooted `d` hops "downstream" of `other` and `self.budget ≤ other.budget − d`, so
    /// every path of `self` is a sub-path of some continuation of `other`.
    ///
    /// `dist` must be the hop distance from `other.root` to `self.root` in the shared
    /// direction (`None` when unreachable, in which case no domination holds).
    pub fn dominates_within(&self, other: &HcsQuery, dist: Option<u32>) -> bool {
        if self.direction != other.direction {
            return false;
        }
        match dist {
            Some(d) => self.budget <= other.budget.saturating_sub(d),
            None => false,
        }
    }

    /// Whether `self`'s materialised results are sufficient to answer a request for paths
    /// from the same root with `needed_budget` hops (i.e. a superset check).
    #[inline]
    pub fn covers_budget(&self, needed_budget: u32) -> bool {
        self.budget >= needed_budget
    }
}

impl fmt::Display for HcsQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q_{{{},{},{}}}", self.root, self.budget, self.direction)
    }
}

/// Summary of a batch of HC-s-t path queries: distinct sources, targets and the largest
/// hop constraint; exactly the inputs of the index construction (Alg. 1 / Alg. 4 line 1).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchSummary {
    /// Distinct source vertices `S = ∪ q.s`.
    pub sources: Vec<VertexId>,
    /// Distinct target vertices `T = ∪ q.t`.
    pub targets: Vec<VertexId>,
    /// Largest hop constraint in the batch.
    pub max_hop_limit: u32,
}

impl BatchSummary {
    /// Computes the summary of a query slice.
    pub fn of(queries: &[PathQuery]) -> Self {
        let mut sources: Vec<VertexId> = queries.iter().map(|q| q.source).collect();
        let mut targets: Vec<VertexId> = queries.iter().map(|q| q.target).collect();
        sources.sort_unstable();
        sources.dedup();
        targets.sort_unstable();
        targets.dedup();
        let max_hop_limit = queries.iter().map(|q| q.hop_limit).max().unwrap_or(0);
        BatchSummary {
            sources,
            targets,
            max_hop_limit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u32) -> VertexId {
        VertexId(x)
    }

    #[test]
    fn budgets_split_the_hop_limit() {
        let q = PathQuery::new(1u32, 2u32, 5);
        assert_eq!(q.forward_budget(), 3);
        assert_eq!(q.backward_budget(), 2);
        assert_eq!(q.forward_budget() + q.backward_budget(), q.hop_limit);

        let even = PathQuery::new(1u32, 2u32, 4);
        assert_eq!(even.forward_budget(), 2);
        assert_eq!(even.backward_budget(), 2);

        let one = PathQuery::new(1u32, 2u32, 1);
        assert_eq!(one.forward_budget(), 1);
        assert_eq!(one.backward_budget(), 0);
    }

    #[test]
    fn roots_anchors_and_half_queries() {
        let q = PathQuery::new(3u32, 9u32, 6);
        assert_eq!(q.root(Direction::Forward), v(3));
        assert_eq!(q.root(Direction::Backward), v(9));
        assert_eq!(q.anchor(Direction::Forward), v(9));
        assert_eq!(q.anchor(Direction::Backward), v(3));
        assert_eq!(
            q.half_query(Direction::Forward),
            HcsQuery::new(3u32, 3, Direction::Forward)
        );
        assert_eq!(
            q.half_query(Direction::Backward),
            HcsQuery::new(9u32, 3, Direction::Backward)
        );
        assert_eq!(q.budget(Direction::Forward), 3);
    }

    #[test]
    fn domination_follows_definition_4_3() {
        let big = HcsQuery::new(0u32, 3, Direction::Forward);
        let nested = HcsQuery::new(5u32, 2, Direction::Forward);
        // dist(big.root, nested.root) = 1  and  2 <= 3 - 1.
        assert!(nested.dominates_within(&big, Some(1)));
        // Budget too large for the distance.
        assert!(!HcsQuery::new(5u32, 3, Direction::Forward).dominates_within(&big, Some(1)));
        // Unreachable root never dominates.
        assert!(!nested.dominates_within(&big, None));
        // Directions must match.
        let backward = HcsQuery::new(5u32, 1, Direction::Backward);
        assert!(!backward.dominates_within(&big, Some(1)));
        // Saturating arithmetic: distance larger than budget.
        assert!(!nested.dominates_within(&big, Some(10)));
    }

    #[test]
    fn covers_budget_is_a_superset_check() {
        let q = HcsQuery::new(1u32, 3, Direction::Forward);
        assert!(q.covers_budget(3));
        assert!(q.covers_budget(1));
        assert!(!q.covers_budget(4));
    }

    #[test]
    fn batch_summary_dedups_endpoints() {
        let queries = vec![
            PathQuery::new(0u32, 5u32, 4),
            PathQuery::new(0u32, 6u32, 7),
            PathQuery::new(2u32, 5u32, 3),
        ];
        let s = BatchSummary::of(&queries);
        assert_eq!(s.sources, vec![v(0), v(2)]);
        assert_eq!(s.targets, vec![v(5), v(6)]);
        assert_eq!(s.max_hop_limit, 7);
        assert_eq!(BatchSummary::of(&[]).max_hop_limit, 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(PathQuery::new(0u32, 11u32, 5).to_string(), "q(v0, v11, 5)");
        assert_eq!(
            HcsQuery::new(1u32, 2, Direction::Forward).to_string(),
            "q_{v1,2,G}"
        );
    }
}
