//! Hop-constrained neighbourhoods and query similarity (Definitions 4.4–4.6).
//!
//! For an HC-s-t path query `q(s, t, k)`, `Γ(q)` is the set of vertices reachable from `s`
//! within `k` hops on `G` and `Γr(q)` the set reachable from `t` within `k` hops on `G^r`.
//! Both are read straight out of the batch distance index — the paper stresses that no
//! extra traversal is needed for clustering. The similarity of two queries is
//!
//! ```text
//! µ(qA, qB) = 2 / ( min(|Γ(qA)|, |Γ(qB)|) / |Γ(qA) ∩ Γ(qB)|
//!               +  min(|Γr(qA)|,|Γr(qB)|) / |Γr(qA) ∩ Γr(qB)| )
//! ```
//!
//! (a harmonic mean of the two containment ratios), with the conventions of footnote 1:
//! if both intersections are empty µ = 0; if exactly one is empty its term contributes 0.

use crate::query::PathQuery;
use hcsp_graph::VertexId;
use hcsp_index::{BatchIndex, SparseDistanceMap};

/// The two hop-constrained neighbourhoods of one query, stored as sorted vertex sets with
/// their sizes. Intersections are computed by linear merges over the sorted sets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryNeighborhood {
    /// Γ(q): vertices within `q.k` hops of `q.s` on `G` (sorted).
    pub forward: Vec<VertexId>,
    /// Γr(q): vertices within `q.k` hops of `q.t` on `G^r` (sorted).
    pub backward: Vec<VertexId>,
}

impl QueryNeighborhood {
    /// Extracts both neighbourhoods of `query` from the batch index.
    ///
    /// The index must have been built with a bound of at least `query.hop_limit` and with
    /// `query.source` / `query.target` among its roots, which is exactly how `BatchEnum`
    /// builds it (Alg. 4 lines 1–2).
    pub fn from_index(index: &BatchIndex, query: &PathQuery) -> Self {
        QueryNeighborhood {
            forward: index.gamma_forward(query.source, query.hop_limit),
            backward: index.gamma_backward(query.target, query.hop_limit),
        }
    }

    /// Builds a neighbourhood from raw sparse maps (useful in tests).
    pub fn from_maps(forward: &SparseDistanceMap, backward: &SparseDistanceMap, k: u32) -> Self {
        QueryNeighborhood {
            forward: forward
                .iter()
                .filter(|&(_, d)| d <= k)
                .map(|(v, _)| v)
                .collect(),
            backward: backward
                .iter()
                .filter(|&(_, d)| d <= k)
                .map(|(v, _)| v)
                .collect(),
        }
    }
}

/// Size of the intersection of two sorted vertex lists.
fn intersection_size(a: &[VertexId], b: &[VertexId]) -> usize {
    let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// One direction's contribution to µ: `|A ∩ B| / min(|A|, |B|)` (0 when the intersection or
/// either set is empty).
fn containment(a: &[VertexId], b: &[VertexId]) -> f64 {
    let inter = intersection_size(a, b);
    let min = a.len().min(b.len());
    if inter == 0 || min == 0 {
        0.0
    } else {
        inter as f64 / min as f64
    }
}

/// The HC-s-t path query similarity µ(qA, qB) of Definition 4.5, in `[0, 1]`.
pub fn query_similarity(a: &QueryNeighborhood, b: &QueryNeighborhood) -> f64 {
    let forward = containment(&a.forward, &b.forward);
    let backward = containment(&a.backward, &b.backward);
    if forward == 0.0 && backward == 0.0 {
        return 0.0;
    }
    // µ = 2 / (1/forward + 1/backward) with a zero term contributing 0 to the harmonic
    // mean (footnote 1 of the paper): equivalently 2·f·b / (f + b) when both are positive,
    // and 0 when either is 0 (one empty intersection means the queries cannot share both
    // halves of any path).
    if forward == 0.0 || backward == 0.0 {
        return 0.0;
    }
    2.0 * forward * backward / (forward + backward)
}

/// Average pairwise similarity of a whole query set, the `µ_Q` reported on the x-axis of
/// Fig. 7 (Exp-1).
pub fn batch_similarity(neighborhoods: &[QueryNeighborhood]) -> f64 {
    let n = neighborhoods.len();
    if n < 2 {
        return if n == 1 { 1.0 } else { 0.0 };
    }
    let mut total = 0.0;
    let mut pairs = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            total += query_similarity(&neighborhoods[i], &neighborhoods[j]);
            pairs += 1;
        }
    }
    total / pairs as f64
}

/// Group similarity δ(C_A, C_B) (Definition 4.6): the average of µ over the Cartesian
/// product of the two groups, given a precomputed pairwise similarity matrix.
pub fn group_similarity(matrix: &SimilarityMatrix, group_a: &[usize], group_b: &[usize]) -> f64 {
    if group_a.is_empty() || group_b.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for &qa in group_a {
        for &qb in group_b {
            total += matrix.get(qa, qb);
        }
    }
    total / (group_a.len() * group_b.len()) as f64
}

/// Symmetric pairwise similarity matrix over a query batch.
#[derive(Debug, Clone)]
pub struct SimilarityMatrix {
    n: usize,
    values: Vec<f64>,
}

impl SimilarityMatrix {
    /// Computes µ for every unordered pair of queries.
    pub fn compute(neighborhoods: &[QueryNeighborhood]) -> Self {
        let n = neighborhoods.len();
        let mut values = vec![0.0; n * n];
        for i in 0..n {
            values[i * n + i] = 1.0;
            for j in (i + 1)..n {
                let sim = query_similarity(&neighborhoods[i], &neighborhoods[j]);
                values[i * n + j] = sim;
                values[j * n + i] = sim;
            }
        }
        SimilarityMatrix { n, values }
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// µ(q_i, q_j).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.values[i * self.n + j]
    }

    /// Average off-diagonal similarity (µ_Q).
    pub fn average(&self) -> f64 {
        if self.n < 2 {
            return if self.n == 1 { 1.0 } else { 0.0 };
        }
        let mut total = 0.0;
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    total += self.get(i, j);
                }
            }
        }
        total / (self.n * (self.n - 1)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcsp_graph::generators::regular::grid;

    fn v(ids: &[u32]) -> Vec<VertexId> {
        ids.iter().map(|&x| VertexId(x)).collect()
    }

    fn nbh(fwd: &[u32], bwd: &[u32]) -> QueryNeighborhood {
        QueryNeighborhood {
            forward: v(fwd),
            backward: v(bwd),
        }
    }

    #[test]
    fn identical_neighborhoods_have_similarity_one() {
        let a = nbh(&[1, 2, 3], &[7, 8]);
        assert!((query_similarity(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_neighborhoods_have_similarity_zero() {
        let a = nbh(&[1, 2], &[3, 4]);
        let b = nbh(&[5, 6], &[7, 8]);
        assert_eq!(query_similarity(&a, &b), 0.0);
    }

    #[test]
    fn one_empty_direction_gives_zero() {
        // Forward sides overlap fully, backward sides are disjoint.
        let a = nbh(&[1, 2], &[3]);
        let b = nbh(&[1, 2], &[9]);
        assert_eq!(query_similarity(&a, &b), 0.0);
    }

    #[test]
    fn subset_neighborhood_scores_one() {
        // If P(qA) ⊆ P(qB) the neighbourhood of A is contained in B's: µ = 1 (property 2).
        let small = nbh(&[1, 2], &[8, 9]);
        let big = nbh(&[1, 2, 3, 4], &[7, 8, 9]);
        assert!((query_similarity(&small, &big) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn similarity_is_symmetric_and_bounded() {
        let a = nbh(&[1, 2, 3, 4], &[10, 11]);
        let b = nbh(&[3, 4, 5], &[11, 12, 13]);
        let ab = query_similarity(&a, &b);
        let ba = query_similarity(&b, &a);
        assert!((ab - ba).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&ab));
        // forward containment = 2/3, backward = 1/2 -> harmonic mean = 2*(2/3)*(1/2)/(7/6).
        let expected = 2.0 * (2.0 / 3.0) * 0.5 / ((2.0 / 3.0) + 0.5);
        assert!((ab - expected).abs() < 1e-12);
    }

    #[test]
    fn matrix_and_batch_average_agree() {
        let ns = vec![nbh(&[1, 2], &[5]), nbh(&[1, 2], &[5]), nbh(&[9], &[8])];
        let matrix = SimilarityMatrix::compute(&ns);
        assert_eq!(matrix.len(), 3);
        assert!(!matrix.is_empty());
        assert!((matrix.get(0, 1) - 1.0).abs() < 1e-12);
        assert_eq!(matrix.get(0, 2), 0.0);
        let avg = batch_similarity(&ns);
        assert!((matrix.average() - avg).abs() < 1e-12);
        // Pairs: (0,1)=1, (0,2)=0, (1,2)=0 -> average 1/3.
        assert!((avg - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn group_similarity_averages_cross_pairs() {
        let ns = vec![nbh(&[1], &[2]), nbh(&[1], &[2]), nbh(&[7], &[9])];
        let matrix = SimilarityMatrix::compute(&ns);
        assert!((group_similarity(&matrix, &[0], &[1]) - 1.0).abs() < 1e-12);
        assert_eq!(group_similarity(&matrix, &[0, 1], &[2]), 0.0);
        assert_eq!(group_similarity(&matrix, &[], &[2]), 0.0);
        let mixed = group_similarity(&matrix, &[0], &[1, 2]);
        assert!((mixed - 0.5).abs() < 1e-12);
    }

    #[test]
    fn neighborhoods_from_index_match_definition() {
        let g = grid(3, 3);
        let q = PathQuery::new(0u32, 8u32, 2);
        let index = BatchIndex::build(&g, &[q.source], &[q.target], q.hop_limit);
        let n = QueryNeighborhood::from_index(&index, &q);
        // Vertices within 2 forward hops of 0 in the 3x3 right/down grid.
        assert_eq!(n.forward, v(&[0, 1, 2, 3, 4, 6]));
        // Vertices within 2 backward hops of 8.
        assert_eq!(n.backward, v(&[2, 4, 5, 6, 7, 8]));
    }

    #[test]
    fn degenerate_batches() {
        assert_eq!(batch_similarity(&[]), 0.0);
        assert_eq!(batch_similarity(&[nbh(&[1], &[2])]), 1.0);
        let empty_matrix = SimilarityMatrix::compute(&[]);
        assert_eq!(empty_matrix.average(), 0.0);
        assert!(empty_matrix.is_empty());
    }
}
