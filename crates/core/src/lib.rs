//! # hcsp-core
//!
//! Batch hop-constrained s-t simple path (HC-s-t path) query processing, reproducing
//! *"Batch Hop-Constrained s-t Simple Path Query Processing in Large Graphs"* (ICDE 2024).
//!
//! Given an unweighted directed graph `G` and a batch of queries `Q = {q(s, t, k)}`, each
//! asking for every simple path from `s` to `t` with at most `k` hops, the crate provides:
//!
//! * [`pathenum::PathEnum`] — the state-of-the-art single-query algorithm (§III, ref. \[15\]):
//!   index-pruned bidirectional DFS + hash-join concatenation `⊕`.
//! * [`basic_enum::BasicEnum`] — Algorithm 1: the batch baseline that shares only the
//!   multi-source BFS index across queries.
//! * [`batch_enum::BatchEnum`] — Algorithm 4, the paper's contribution: queries are
//!   clustered by neighbourhood similarity (Algorithm 2), common *HC-s path queries* are
//!   detected per cluster (Algorithm 3) and recorded in the query sharing graph Ψ, and the
//!   enumeration evaluates Ψ in topological order, materialising every shared sub-query
//!   once and splicing it into every dependent query.
//! * [`engine::BatchEngine`] — a one-shot facade selecting between the five evaluated
//!   variants (`PathEnum`, `BasicEnum`, `BasicEnum+`, `BatchEnum`, `BatchEnum+`).
//! * [`engine::Engine`] — the long-lived, reusable form of the same facade: graph and
//!   [`hcsp_index::BatchIndex`] are hoisted out of the per-batch path, the index is
//!   extended incrementally for new endpoints and rebuilt only when the hop bound grows.
//!   This is the building block of the micro-batching serving layer (`hcsp-service`).
//! * [`spec`] — the typed request/response surface: a [`spec::QuerySpec`] pairs a query
//!   with a [`spec::ResultMode`] (`Exists | Count | FirstK(k) | Collect`, plus an
//!   optional path budget) and [`engine::Engine::run_specs`] /
//!   [`engine::Engine::run_specs_parallel`] answer mixed-mode batches over one shared
//!   index, stopping each query the moment its mode is satisfied (the [`sink::SinkFlow`]
//!   verdicts every enumeration core honours).
//!
//! ## Quick example
//!
//! ```
//! use hcsp_core::{Algorithm, BatchEngine, PathQuery};
//! use hcsp_graph::DiGraph;
//!
//! // A diamond with two parallel 2-hop routes.
//! let g = DiGraph::from_edge_list(4, &[(0, 1), (1, 3), (0, 2), (2, 3)]).unwrap();
//! let queries = vec![PathQuery::new(0u32, 3u32, 3)];
//! let outcome = BatchEngine::with_algorithm(Algorithm::BatchEnumPlus).run(&g, &queries);
//! assert_eq!(outcome.count(0), 2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod basic_enum;
pub mod batch_enum;
pub mod bruteforce;
pub mod buffers;
pub mod cache;
pub mod clustering;
pub mod concat;
pub mod detection;
pub mod engine;
pub mod epoch;
pub mod materialize;
pub mod parallel;
pub mod path;
pub mod pathenum;
pub mod query;
pub mod search;
pub mod search_order;
pub mod sharing_graph;
pub mod similarity;
pub mod sink;
pub mod spec;
pub mod stats;

pub use basic_enum::BasicEnum;
pub use batch_enum::{BatchEnum, DEFAULT_GAMMA};
pub use buffers::{JoinScratch, SearchBuffers, VisitMarks};
pub use engine::{
    Algorithm, BatchEngine, BatchOutcome, Engine, IndexReuse, UpdateSummary,
    DEFAULT_UPDATE_REFRESH_CAP,
};
pub use epoch::{DurabilitySink, Epoch, EpochAdvance, EpochPublisher, MAX_EPOCH_DELTAS};
pub use parallel::{ParallelBasicEnum, ParallelBatchEnum, Parallelism, SplitPolicy};
pub use path::{Path, PathSet};
pub use pathenum::PathEnum;
pub use query::{BatchSummary, HcsQuery, PathQuery, QueryId};
pub use search::{ExpansionMode, SearchContext};
pub use search_order::SearchOrder;
pub use sink::{CallbackSink, CollectSink, ControlSink, CountSink, PathSink, SinkFlow};
pub use spec::{QueryResponse, QuerySpec, ResultMode, SpecOutcome, SpecSink};
pub use stats::{EnumStats, MicroBatchStats, SearchCounters, ServiceStats, Stage};
