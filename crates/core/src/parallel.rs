//! Intra-batch parallelism: the "just use more workers" alternative.
//!
//! The paper's Challenges section notes that a batch could simply be processed "using the
//! state-of-the-art HC-s-t path enumeration algorithm sequentially or deploy more servers
//! to process these queries in parallel", and argues that doing so misses the common
//! computation across queries. This module implements that alternative faithfully so it
//! can be measured: queries (or whole clusters) are distributed over worker threads, each
//! worker runs the *non-shared* per-query enumeration against the shared index, and the
//! results are merged. It also provides a parallel wrapper around `BatchEnum` that
//! processes independent clusters concurrently — sharing within a cluster, parallelism
//! across clusters — which is the natural combination of the two ideas.
//!
//! Threads are spawned with `std::thread::scope` (no `'static` bound on the graph) and the
//! shared sink is protected by a `parking_lot::Mutex`; workers buffer locally and flush
//! per query to keep contention negligible.

use crate::basic_enum::BasicEnum;
use crate::batch_enum::BatchEnum;
use crate::clustering::cluster_queries;
use crate::pathenum::PathEnum;
use crate::query::{BatchSummary, PathQuery, QueryId};
use crate::search_order::SearchOrder;
use crate::similarity::{QueryNeighborhood, SimilarityMatrix};
use crate::sink::{CollectSink, PathSink};
use crate::stats::{EnumStats, Stage};
use hcsp_graph::DiGraph;
use hcsp_index::BatchIndex;
use parking_lot::Mutex;
use std::time::Instant;

/// How many worker threads a parallel runner uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Use the number of available CPU cores (as reported by the standard library).
    #[default]
    Auto,
    /// Use exactly this many workers (values of 0 are treated as 1).
    Fixed(usize),
}

impl Parallelism {
    /// Resolves to a concrete worker count.
    pub fn workers(self) -> usize {
        match self {
            Parallelism::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            Parallelism::Fixed(n) => n.max(1),
        }
    }
}

/// A thread-safe sink adapter: workers lock, flush one query's buffered paths, unlock.
struct SharedSink<'a, S: PathSink> {
    inner: Mutex<&'a mut S>,
}

impl<'a, S: PathSink> SharedSink<'a, S> {
    fn new(inner: &'a mut S) -> Self {
        SharedSink {
            inner: Mutex::new(inner),
        }
    }

    fn flush(&self, query: QueryId, paths: &crate::path::PathSet) {
        let mut guard = self.inner.lock();
        for p in paths.iter() {
            guard.accept(query, p);
        }
    }
}

/// The "more servers" baseline: every query is enumerated independently (PathEnum against
/// a shared index, exactly like `BasicEnum`), but queries are spread over worker threads.
///
/// No computation is shared beyond the index, so the total CPU *work* equals `BasicEnum`'s;
/// only the wall-clock time shrinks, and only as long as the per-query costs are balanced.
#[derive(Debug, Clone, Copy)]
pub struct ParallelBasicEnum {
    /// Neighbour expansion order for the per-query searches.
    pub order: SearchOrder,
    /// Worker thread count.
    pub parallelism: Parallelism,
}

impl Default for ParallelBasicEnum {
    fn default() -> Self {
        ParallelBasicEnum {
            order: SearchOrder::default(),
            parallelism: Parallelism::Auto,
        }
    }
}

impl ParallelBasicEnum {
    /// Creates the runner with an explicit search order and worker count.
    pub fn new(order: SearchOrder, parallelism: Parallelism) -> Self {
        ParallelBasicEnum { order, parallelism }
    }

    /// Processes the batch, streaming results (in arbitrary inter-query order) into `sink`.
    pub fn run_batch<S: PathSink + Send>(
        &self,
        graph: &DiGraph,
        queries: &[PathQuery],
        sink: &mut S,
    ) -> EnumStats {
        let mut stats = EnumStats::new(queries.len());
        stats.num_clusters = queries.len();
        if queries.is_empty() {
            sink.finish();
            return stats;
        }

        let start = Instant::now();
        let summary = BatchSummary::of(queries);
        let index = BatchIndex::build(
            graph,
            &summary.sources,
            &summary.targets,
            summary.max_hop_limit,
        );
        stats.add_stage(Stage::BuildIndex, start.elapsed());

        let start = Instant::now();
        let workers = self.parallelism.workers().min(queries.len().max(1));
        let next_query = std::sync::atomic::AtomicUsize::new(0);
        let shared = SharedSink::new(sink);
        let collected_stats: Mutex<Vec<EnumStats>> = Mutex::new(Vec::new());

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let per_query = PathEnum::new(self.order);
                    let mut local_stats = EnumStats::new(0);
                    loop {
                        let qid = next_query.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if qid >= queries.len() {
                            break;
                        }
                        let mut local = CollectSink::new(1);
                        per_query.run_with_index(
                            graph,
                            &index,
                            &queries[qid],
                            0,
                            &mut local,
                            &mut local_stats,
                        );
                        shared.flush(qid, local.paths(0));
                    }
                    collected_stats.lock().push(local_stats);
                });
            }
        });

        for worker_stats in collected_stats.into_inner() {
            stats.counters.merge(&worker_stats.counters);
        }
        stats.add_stage(Stage::Enumeration, start.elapsed());
        sink.finish();
        stats
    }
}

/// Parallel `BatchEnum`: clusters are detected exactly as in the sequential algorithm and
/// then evaluated concurrently, one worker per cluster at a time. Sharing happens *inside*
/// a cluster (where the common computation lives); across clusters there is nothing to
/// share, so they parallelise embarrassingly.
#[derive(Debug, Clone, Copy)]
pub struct ParallelBatchEnum {
    /// Neighbour expansion order.
    pub order: SearchOrder,
    /// Clustering threshold γ.
    pub gamma: f64,
    /// Worker thread count.
    pub parallelism: Parallelism,
}

impl Default for ParallelBatchEnum {
    fn default() -> Self {
        ParallelBatchEnum {
            order: SearchOrder::default(),
            gamma: crate::batch_enum::DEFAULT_GAMMA,
            parallelism: Parallelism::Auto,
        }
    }
}

impl ParallelBatchEnum {
    /// Creates the runner.
    pub fn new(order: SearchOrder, gamma: f64, parallelism: Parallelism) -> Self {
        ParallelBatchEnum {
            order,
            gamma,
            parallelism,
        }
    }

    /// Processes the batch, streaming results into `sink`.
    pub fn run_batch<S: PathSink + Send>(
        &self,
        graph: &DiGraph,
        queries: &[PathQuery],
        sink: &mut S,
    ) -> EnumStats {
        let mut stats = EnumStats::new(queries.len());
        if queries.is_empty() {
            sink.finish();
            return stats;
        }

        // Index + clustering are identical to the sequential BatchEnum.
        let start = Instant::now();
        let summary = BatchSummary::of(queries);
        let index = BatchIndex::build(
            graph,
            &summary.sources,
            &summary.targets,
            summary.max_hop_limit,
        );
        stats.add_stage(Stage::BuildIndex, start.elapsed());

        let start = Instant::now();
        let neighborhoods: Vec<QueryNeighborhood> = queries
            .iter()
            .map(|q| QueryNeighborhood::from_index(&index, q))
            .collect();
        let matrix = SimilarityMatrix::compute(&neighborhoods);
        let clusters = cluster_queries(&matrix, self.gamma);
        stats.num_clusters = clusters.len();
        stats.add_stage(Stage::ClusterQuery, start.elapsed());

        // Evaluate clusters concurrently; each worker runs the sequential shared pipeline
        // on its cluster (detection + topological enumeration) and flushes per query.
        let start = Instant::now();
        let workers = self.parallelism.workers().min(clusters.len().max(1));
        let next_cluster = std::sync::atomic::AtomicUsize::new(0);
        let shared = SharedSink::new(sink);
        let collected_stats: Mutex<Vec<EnumStats>> = Mutex::new(Vec::new());

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let sequential = BatchEnum::new(self.order, 1.0);
                    let mut worker_stats = EnumStats::new(0);
                    loop {
                        let c = next_cluster.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if c >= clusters.len() {
                            break;
                        }
                        let cluster_queries: Vec<PathQuery> =
                            clusters[c].iter().map(|&qid| queries[qid]).collect();
                        // Run the whole shared pipeline on just this cluster. γ = 1 inside
                        // the worker keeps the cluster as a single group (it has already
                        // been formed by the outer clustering) without re-clustering cost.
                        let mut local = CollectSink::new(cluster_queries.len());
                        let cluster_stats = sequential.run_cluster_for_parallel(
                            graph,
                            &index,
                            &cluster_queries,
                            &mut local,
                        );
                        worker_stats.merge(&cluster_stats);
                        for (offset, &qid) in clusters[c].iter().enumerate() {
                            shared.flush(qid, local.paths(offset));
                        }
                    }
                    collected_stats.lock().push(worker_stats);
                });
            }
        });

        for worker_stats in collected_stats.into_inner() {
            stats.counters.merge(&worker_stats.counters);
            stats.num_shared_subqueries += worker_stats.num_shared_subqueries;
            stats.peak_cached_results = stats
                .peak_cached_results
                .max(worker_stats.peak_cached_results);
            stats.add_stage(
                Stage::IdentifySubquery,
                worker_stats.stage_time(Stage::IdentifySubquery),
            );
        }
        stats.add_stage(Stage::Enumeration, start.elapsed());
        sink.finish();
        stats
    }
}

impl BatchEnum {
    /// Evaluates one pre-formed cluster against an existing index (used by the parallel
    /// wrapper): detection + shared enumeration, but no index build and no re-clustering.
    pub(crate) fn run_cluster_for_parallel<S: PathSink>(
        &self,
        graph: &DiGraph,
        index: &BatchIndex,
        queries: &[PathQuery],
        sink: &mut S,
    ) -> EnumStats {
        let mut stats = EnumStats::new(queries.len());
        let cluster: Vec<QueryId> = (0..queries.len()).collect();
        self.process_cluster(graph, index, queries, &cluster, sink, &mut stats);
        stats
    }
}

/// Convenience comparison record used by the parallelism ablation: the same batch timed
/// sequentially and with a given worker count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelComparison {
    /// Wall-clock seconds of the sequential run.
    pub sequential_seconds: f64,
    /// Wall-clock seconds of the parallel run.
    pub parallel_seconds: f64,
    /// Number of worker threads used by the parallel run.
    pub workers: usize,
}

impl ParallelComparison {
    /// Observed speed-up (sequential / parallel).
    pub fn speedup(&self) -> f64 {
        if self.parallel_seconds <= 0.0 {
            return f64::INFINITY;
        }
        self.sequential_seconds / self.parallel_seconds
    }
}

/// Times `BasicEnum` sequentially vs [`ParallelBasicEnum`] with `workers` threads on the
/// same batch (results are counted, not collected).
pub fn compare_parallel_basic(
    graph: &DiGraph,
    queries: &[PathQuery],
    order: SearchOrder,
    workers: usize,
) -> ParallelComparison {
    use crate::sink::CountSink;

    let start = Instant::now();
    let mut sequential_sink = CountSink::new(queries.len());
    BasicEnum::new(order).run_batch(graph, queries, &mut sequential_sink);
    let sequential_seconds = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let mut parallel_sink = CountSink::new(queries.len());
    ParallelBasicEnum::new(order, Parallelism::Fixed(workers)).run_batch(
        graph,
        queries,
        &mut parallel_sink,
    );
    let parallel_seconds = start.elapsed().as_secs_f64();

    debug_assert_eq!(sequential_sink.counts(), parallel_sink.counts());
    ParallelComparison {
        sequential_seconds,
        parallel_seconds,
        workers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::enumerate_reference;
    use crate::sink::CountSink;
    use hcsp_graph::generators::erdos_renyi::gnm_random;
    use hcsp_graph::generators::regular::{complete, grid};

    fn reference_counts(graph: &DiGraph, queries: &[PathQuery]) -> Vec<u64> {
        queries
            .iter()
            .map(|q| enumerate_reference(graph, q).len() as u64)
            .collect()
    }

    #[test]
    fn parallel_basic_matches_reference() {
        let g = grid(4, 4);
        let queries = vec![
            PathQuery::new(0u32, 15u32, 6),
            PathQuery::new(1u32, 15u32, 6),
            PathQuery::new(0u32, 14u32, 6),
            PathQuery::new(4u32, 15u32, 5),
            PathQuery::new(0u32, 11u32, 5),
        ];
        for workers in [1, 2, 4] {
            let mut sink = CountSink::new(queries.len());
            let stats = ParallelBasicEnum::new(SearchOrder::VertexId, Parallelism::Fixed(workers))
                .run_batch(&g, &queries, &mut sink);
            assert_eq!(
                sink.counts(),
                reference_counts(&g, &queries),
                "workers = {workers}"
            );
            assert_eq!(stats.num_queries, queries.len());
            assert!(stats.counters.produced_paths > 0);
        }
    }

    #[test]
    fn parallel_batch_matches_reference() {
        for seed in 0..2 {
            let g = gnm_random(70, 400, seed).unwrap();
            let queries = vec![
                PathQuery::new(0u32, 30u32, 5),
                PathQuery::new(0u32, 31u32, 5),
                PathQuery::new(1u32, 30u32, 4),
                PathQuery::new(2u32, 40u32, 4),
                PathQuery::new(3u32, 41u32, 5),
                PathQuery::new(3u32, 42u32, 4),
            ];
            for workers in [1, 3] {
                let mut sink = CountSink::new(queries.len());
                let stats = ParallelBatchEnum::new(
                    SearchOrder::DistanceThenDegree,
                    0.4,
                    Parallelism::Fixed(workers),
                )
                .run_batch(&g, &queries, &mut sink);
                assert_eq!(
                    sink.counts(),
                    reference_counts(&g, &queries),
                    "workers = {workers}"
                );
                assert!(stats.num_clusters >= 1);
            }
        }
    }

    #[test]
    fn parallel_collect_sink_receives_every_path() {
        let g = complete(6);
        let queries = vec![PathQuery::new(0u32, 5u32, 3), PathQuery::new(1u32, 4u32, 3)];
        let mut sink = crate::sink::CollectSink::new(queries.len());
        ParallelBasicEnum::new(SearchOrder::VertexId, Parallelism::Fixed(2))
            .run_batch(&g, &queries, &mut sink);
        let reference = reference_counts(&g, &queries);
        for (i, &expected) in reference.iter().enumerate() {
            assert_eq!(sink.paths(i).len() as u64, expected);
            for p in sink.paths(i).iter() {
                assert_eq!(p[0], queries[i].source);
                assert_eq!(*p.last().unwrap(), queries[i].target);
            }
        }
    }

    #[test]
    fn empty_batches_and_degenerate_worker_counts() {
        let g = complete(3);
        let mut sink = CountSink::new(0);
        let stats = ParallelBasicEnum::default().run_batch(&g, &[], &mut sink);
        assert_eq!(stats.num_queries, 0);
        let stats = ParallelBatchEnum::default().run_batch(&g, &[], &mut sink);
        assert_eq!(stats.num_queries, 0);
        assert_eq!(Parallelism::Fixed(0).workers(), 1);
        assert!(Parallelism::Auto.workers() >= 1);
        assert_eq!(Parallelism::default(), Parallelism::Auto);
    }

    #[test]
    fn comparison_reports_consistent_numbers() {
        let g = grid(4, 4);
        let queries = vec![
            PathQuery::new(0u32, 15u32, 6),
            PathQuery::new(1u32, 15u32, 6),
        ];
        let cmp = compare_parallel_basic(&g, &queries, SearchOrder::VertexId, 2);
        assert_eq!(cmp.workers, 2);
        assert!(cmp.sequential_seconds >= 0.0);
        assert!(cmp.parallel_seconds >= 0.0);
        assert!(cmp.speedup() > 0.0);
    }
}
