//! Cluster-sharded parallel batch execution.
//!
//! The paper's Challenges section notes that a batch could simply be processed "using the
//! state-of-the-art HC-s-t path enumeration algorithm sequentially or deploy more servers
//! to process these queries in parallel", and argues that doing so misses the common
//! computation across queries. This module combines the two ideas instead of opposing
//! them: **sharing within a cluster, parallelism across clusters**. Similarity clusters
//! (the output of [`crate::clustering`]) are the natural parallel unit — queries in
//! different clusters share nothing, so clusters parallelise embarrassingly while every
//! cluster still runs the full shared pipeline (detection + topological enumeration).
//!
//! ## Execution model
//!
//! 1. The batch is indexed and clustered exactly as in the sequential algorithm.
//! 2. Clusters are packed into **shards** (longest-processing-time-first over the cluster
//!    sizes), the steal unit of the scheduler. More shards than workers keeps stealing
//!    granular; packing the big clusters first keeps the shards balanced.
//! 3. A [`std::thread::scope`] worker pool drains a **work-stealing deque** of shards:
//!    each worker owns a deque seeded round-robin, pops its own front, and steals from
//!    the back of other workers' deques when it runs dry.
//! 4. Every worker owns one reusable [`SearchBuffers`] (the allocation-free hot path) and
//!    buffers each cluster's results locally; after the pool joins, per-cluster results
//!    are **merged in cluster order**, so the paths delivered per query — and their order
//!    — are byte-identical to the sequential run, regardless of worker count or
//!    scheduling. Counter merges are likewise ordered, making the reported `Stats`
//!    deterministic. Stage timings: `BuildIndex`, `ClusterQuery` and `Enumeration` are
//!    wall-clock spans of the calling thread (`Enumeration` covers the whole parallel
//!    region, so speedup shows up there), while `IdentifySubquery` is the CPU-side total
//!    summed over clusters, mirroring how the sequential run accumulates it.
//!
//! The per-cluster results are buffered in memory before the merge; for count-only
//! workloads over astronomically large result sets prefer the sequential runner or
//! smaller micro-batches.

use crate::basic_enum::BasicEnum;
use crate::batch_enum::BatchEnum;
use crate::buffers::SearchBuffers;
use crate::clustering::cluster_queries;
use crate::pathenum::PathEnum;
use crate::query::{BatchSummary, PathQuery, QueryId};
use crate::search::ExpansionMode;
use crate::search_order::SearchOrder;
use crate::similarity::{QueryNeighborhood, SimilarityMatrix};
use crate::sink::{CollectSink, PathSink, SinkFlow};
use crate::spec::{QueryResponse, QuerySpec, SpecSink};
use crate::stats::{EnumStats, Stage};
use hcsp_graph::DiGraph;
use hcsp_index::BatchIndex;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::time::Instant;

/// How many shards each worker's deque is seeded with (steal granularity).
const SHARDS_PER_WORKER: usize = 4;

/// How many worker threads a parallel runner uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Use the number of available CPU cores (as reported by the standard library).
    #[default]
    Auto,
    /// Use exactly this many workers (values of 0 are treated as 1).
    Fixed(usize),
}

impl Parallelism {
    /// Resolves to a concrete worker count.
    pub fn workers(self) -> usize {
        match self {
            Parallelism::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            Parallelism::Fixed(n) => n.max(1),
        }
    }
}

/// How the parallel runners split oversized similarity clusters — the intra-cluster
/// work-splitting knob.
///
/// A similarity cluster is both the sharing unit and the parallel unit: queries in one
/// cluster share computation, clusters parallelise embarrassingly. Dense graphs (or a
/// low γ) can collapse a whole batch into a **single giant cluster** — maximal sharing,
/// zero parallel slack: the batch runs on one worker while the rest idle. Splitting such
/// a cluster into consecutive sub-clusters restores slack at the cost of the sharing
/// across the split; results stay lossless per query, but the per-query path *order*
/// matches a sequential run over the same split clusters, not the unsplit run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitPolicy {
    /// Never split. Preserves the byte-identical-to-sequential guarantee (the default).
    #[default]
    Never,
    /// Split every cluster larger than this many queries into consecutive sub-clusters
    /// of at most that size (a value of 0 behaves like [`SplitPolicy::Never`]).
    Cap(usize),
    /// Split only when the batch would otherwise under-occupy the pool: if the cluster
    /// count already reaches the worker count nothing is split, otherwise clusters are
    /// capped at `max(1, ⌈|Q| / (2 · workers)⌉)` — roughly two sub-clusters per worker,
    /// enough slack for stealing without shredding the sharing into singletons.
    Auto,
}

impl SplitPolicy {
    /// The compat mapping of the old `max_cluster_size: Option<usize>` knob:
    /// `Some(c > 0)` caps at `c`, `Some(0)` and `None` never split.
    pub fn from_cap(cap: Option<usize>) -> Self {
        match cap.filter(|&c| c > 0) {
            Some(c) => SplitPolicy::Cap(c),
            None => SplitPolicy::Never,
        }
    }

    /// The explicit cap, when the policy is a fixed one (`Cap(0)` reads as `None`).
    pub fn cap(self) -> Option<usize> {
        match self {
            SplitPolicy::Cap(c) if c > 0 => Some(c),
            _ => None,
        }
    }

    /// Applies the policy to freshly formed clusters, given the resolved worker count
    /// and the batch size.
    fn apply(
        self,
        clusters: Vec<Vec<QueryId>>,
        workers: usize,
        num_queries: usize,
    ) -> Vec<Vec<QueryId>> {
        match self {
            SplitPolicy::Never | SplitPolicy::Cap(0) => clusters,
            SplitPolicy::Cap(cap) => split_clusters(clusters, cap),
            SplitPolicy::Auto => {
                if clusters.len() >= workers.max(1) {
                    return clusters;
                }
                let cap = num_queries.div_ceil(workers.max(1) * 2).max(1);
                split_clusters(clusters, cap)
            }
        }
    }
}

/// Packs cluster indices into at most `num_shards` shards, balancing total cluster size.
///
/// Classic LPT (longest processing time first) greedy: clusters are considered largest
/// first and each goes to the currently lightest shard. Cluster size is the cost proxy —
/// enumeration cost grows with cluster size, and a deterministic proxy keeps the plan (and
/// therefore the merge order downstream) reproducible. Every returned shard is non-empty
/// and internally sorted, and the concatenation of all shards covers every cluster once.
pub fn plan_shards(cluster_sizes: &[usize], num_shards: usize) -> Vec<Vec<usize>> {
    let num_shards = num_shards.clamp(1, cluster_sizes.len().max(1));
    let mut order: Vec<usize> = (0..cluster_sizes.len()).collect();
    // Stable tie-break on the index keeps the plan deterministic.
    // lint:allow(panic-free-hot-path) c ranges over 0..cluster_sizes.len()
    order.sort_by_key(|&c| (std::cmp::Reverse(cluster_sizes[c]), c));

    let mut shards: Vec<Vec<usize>> = vec![Vec::new(); num_shards];
    let mut loads: Vec<usize> = vec![0; num_shards];
    for c in order {
        let lightest = (0..num_shards)
            // lint:allow(panic-free-hot-path) s ranges over 0..num_shards = loads.len()
            .min_by_key(|&s| (loads[s], s))
            // lint:allow(panic-free-hot-path) num_shards is clamped to >= 1 above
            .expect("at least one shard");
        // lint:allow(panic-free-hot-path) lightest came from the 0..num_shards scan just above
        shards[lightest].push(c);
        // lint:allow(panic-free-hot-path) same bounds as the two lines above
        loads[lightest] += cluster_sizes[c].max(1);
    }
    shards.retain(|s| !s.is_empty());
    for shard in &mut shards {
        shard.sort_unstable();
    }
    shards
}

/// Splits every cluster larger than `cap` into consecutive sub-clusters of at most `cap`
/// queries, preserving within-cluster query order (so the split is deterministic).
fn split_clusters(clusters: Vec<Vec<QueryId>>, cap: usize) -> Vec<Vec<QueryId>> {
    let cap = cap.max(1);
    clusters
        .into_iter()
        .flat_map(|cluster| {
            cluster
                .chunks(cap)
                .map(<[QueryId]>::to_vec)
                .collect::<Vec<_>>()
        })
        .collect()
}

/// The similarity-clustering front of every sharing-mode parallel run: neighbourhoods
/// from the index, pairwise similarity, γ-threshold clustering, then the configured
/// [`SplitPolicy`]. One helper on purpose — plain-batch and spec-mode parallel
/// execution must cluster identically, or their "same clusters as sequential"
/// equivalences silently diverge.
fn cluster_with_policy(
    index: &BatchIndex,
    queries: &[PathQuery],
    gamma: f64,
    split: SplitPolicy,
    workers: usize,
) -> Vec<Vec<QueryId>> {
    let neighborhoods: Vec<QueryNeighborhood> = queries
        .iter()
        .map(|q| QueryNeighborhood::from_index(index, q))
        .collect();
    let matrix = SimilarityMatrix::compute(&neighborhoods);
    let clusters = cluster_queries(&matrix, gamma);
    split.apply(clusters, workers, queries.len())
}

/// The work-stealing deque set: one deque of shard ids per worker.
struct ShardDeques {
    queues: Vec<Mutex<VecDeque<usize>>>,
}

impl ShardDeques {
    /// Seeds `workers` deques round-robin with shard ids `0..num_shards`.
    fn seed(num_shards: usize, workers: usize) -> Self {
        let mut queues: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
        for shard in 0..num_shards {
            // lint:allow(panic-free-hot-path) shard % workers < workers = queues.len()
            queues[shard % workers].push_back(shard);
        }
        ShardDeques {
            queues: queues.into_iter().map(Mutex::new).collect(),
        }
    }

    /// Pops the next shard for `worker`: its own deque's front first, then a steal from
    /// the back of the other deques (scanned round-robin starting after `worker`).
    fn next(&self, worker: usize) -> Option<usize> {
        // lint:allow(panic-free-hot-path) worker < workers = queues.len() by construction
        if let Some(shard) = self.queues[worker].lock().pop_front() {
            return Some(shard);
        }
        let n = self.queues.len();
        for offset in 1..n {
            let victim = (worker + offset) % n;
            // lint:allow(panic-free-hot-path) victim is reduced mod n = queues.len()
            if let Some(shard) = self.queues[victim].lock().pop_back() {
                return Some(shard);
            }
        }
        None
    }
}

/// One cluster's buffered outcome: its index in the batch's cluster list, the locally
/// collected per-query paths (offsets follow the cluster's query order), and the stats of
/// evaluating it.
type ClusterResult = (usize, CollectSink, EnumStats);

/// Runs `exec` once per cluster across a work-stealing worker pool and returns the
/// per-cluster results **sorted by cluster index** — the deterministic merge order —
/// together with the number of shards the scheduler planned (the *effective* parallel
/// slack: 1 means the whole batch was one steal unit, however many workers were asked
/// for).
///
/// `make_sink` builds the cluster's local sink (query ids are cluster offsets, not batch
/// ids); `exec` receives the cluster index, that sink, and the worker's reusable
/// [`SearchBuffers`], and must behave identically to the sequential evaluation of the
/// cluster. Generic over the sink type so the collect-everything runs and the
/// early-terminating [`SpecSink`] runs share one scheduler.
fn execute_sharded_with<L, M, F>(
    clusters: &[Vec<QueryId>],
    workers: usize,
    make_sink: M,
    exec: F,
) -> (Vec<(usize, L, EnumStats)>, usize)
where
    L: Send,
    M: Fn(usize) -> L + Sync,
    F: Fn(usize, &mut L, &mut SearchBuffers) -> EnumStats + Sync,
{
    let workers = workers.clamp(1, clusters.len().max(1));
    let shards = plan_shards(
        &clusters.iter().map(Vec::len).collect::<Vec<_>>(),
        workers * SHARDS_PER_WORKER,
    );
    let deques = ShardDeques::seed(shards.len(), workers);
    let collected: Mutex<Vec<(usize, L, EnumStats)>> =
        Mutex::new(Vec::with_capacity(clusters.len()));

    std::thread::scope(|scope| {
        for worker in 0..workers {
            let shards = &shards;
            let deques = &deques;
            let collected = &collected;
            let make_sink = &make_sink;
            let exec = &exec;
            scope.spawn(move || {
                let mut buffers = SearchBuffers::new();
                let mut local: Vec<(usize, L, EnumStats)> = Vec::new();
                while let Some(shard) = deques.next(worker) {
                    // lint:allow(panic-free-hot-path) deques are seeded with 0..shards.len() only
                    for &cluster_idx in &shards[shard] {
                        let mut sink = make_sink(cluster_idx);
                        let stats = exec(cluster_idx, &mut sink, &mut buffers);
                        local.push((cluster_idx, sink, stats));
                    }
                }
                collected.lock().append(&mut local);
            });
        }
    });

    let num_shards = shards.len();
    let mut results = collected.into_inner();
    results.sort_by_key(|&(cluster_idx, _, _)| cluster_idx);
    (results, num_shards)
}

/// [`execute_sharded_with`] specialised to local [`CollectSink`]s (the classic
/// collect-everything runs).
fn execute_sharded<F>(
    clusters: &[Vec<QueryId>],
    workers: usize,
    exec: F,
) -> (Vec<ClusterResult>, usize)
where
    F: Fn(usize, &mut CollectSink, &mut SearchBuffers) -> EnumStats + Sync,
{
    execute_sharded_with(
        clusters,
        workers,
        // lint:allow(panic-free-hot-path) cluster_idx enumerates the same clusters slice
        |cluster_idx| CollectSink::new(clusters[cluster_idx].len()),
        exec,
    )
}

/// Merges sorted per-cluster results into the caller's sink and stats, in cluster order.
///
/// Counters and the `IdentifySubquery` stage (a CPU-side total, exactly as the sequential
/// algorithm accumulates it across clusters) merge here; the `Enumeration` stage is *not*
/// summed from the per-cluster stats — with concurrent workers that would report total
/// CPU time, up to `workers ×` the elapsed time. The callers record the wall-clock of
/// their whole parallel region as `Enumeration` instead.
///
/// Sink verdicts are honoured at delivery time: a `SkipQuery` drops the query's
/// remaining buffered paths, a `Stop` ends delivery outright (the enumeration work has
/// already happened inside the workers — these paths run through the quota-blind
/// collect-everything pipeline — but the sink is never called past its verdict, exactly
/// as the [`PathSink::accept`] contract promises). Stats still cover every evaluated
/// cluster. Sinks that want the parallel *work saving* too go through the spec pipeline
/// ([`crate::Engine::run_specs_parallel`]), where workers carry the quotas themselves.
fn merge_results<S: PathSink>(
    clusters: &[Vec<QueryId>],
    results: Vec<ClusterResult>,
    stats: &mut EnumStats,
    sink: &mut S,
) {
    let mut stopped = false;
    for (cluster_idx, local, cluster_stats) in results {
        stats.counters.merge(&cluster_stats.counters);
        stats.num_shared_subqueries += cluster_stats.num_shared_subqueries;
        stats.peak_cached_results = stats
            .peak_cached_results
            .max(cluster_stats.peak_cached_results);
        stats.add_stage(
            Stage::IdentifySubquery,
            cluster_stats.stage_time(Stage::IdentifySubquery),
        );
        if stopped {
            continue;
        }
        // lint:allow(panic-free-hot-path) cluster_idx came out of execute_sharded over these clusters
        'cluster: for (offset, &qid) in clusters[cluster_idx].iter().enumerate() {
            for path in local.paths(offset).iter() {
                match sink.accept(qid, path) {
                    SinkFlow::Continue => {}
                    SinkFlow::SkipQuery => break,
                    SinkFlow::Stop => {
                        stopped = true;
                        break 'cluster;
                    }
                }
            }
        }
    }
}

/// Merges sorted per-cluster spec results into the caller's stats and response slots, in
/// cluster order (the spec-mode sibling of [`merge_results`]: responses are typed values,
/// not replayed paths — a worker-local `Count` cannot be reconstructed from paths).
fn merge_spec_results(
    clusters: &[Vec<QueryId>],
    results: Vec<(usize, SpecSink, EnumStats)>,
    stats: &mut EnumStats,
    responses: &mut [Option<QueryResponse>],
) {
    for (cluster_idx, local, cluster_stats) in results {
        stats.counters.merge(&cluster_stats.counters);
        stats.num_shared_subqueries += cluster_stats.num_shared_subqueries;
        stats.peak_cached_results = stats
            .peak_cached_results
            .max(cluster_stats.peak_cached_results);
        stats.add_stage(
            Stage::IdentifySubquery,
            cluster_stats.stage_time(Stage::IdentifySubquery),
        );
        // lint:allow(panic-free-hot-path) cluster_idx came out of execute_sharded_with over these clusters
        for (&qid, response) in clusters[cluster_idx].iter().zip(local.into_responses()) {
            // lint:allow(panic-free-hot-path) qid < specs.len() = responses.len(): clusters partition the batch
            responses[qid] = Some(response);
        }
    }
}

/// Parallel spec execution for the `PathEnum` baseline: every spec is its own cluster
/// (per-query index, per-query enumeration), workers run the quota-aware per-query
/// pipeline against a worker-local [`SpecSink`], so `Exists`/`FirstK` specs terminate
/// their DFS early exactly as they would sequentially. Responses are merged in query
/// order — identical to the sequential run.
pub(crate) fn run_specs_parallel_pathenum(
    graph: &DiGraph,
    specs: &[QuerySpec],
    order: SearchOrder,
    mode: ExpansionMode,
    parallelism: Parallelism,
) -> (Vec<QueryResponse>, EnumStats) {
    let mut stats = EnumStats::new(specs.len());
    stats.num_clusters = specs.len();
    let mut responses: Vec<Option<QueryResponse>> = vec![None; specs.len()];
    if specs.is_empty() {
        return (Vec::new(), stats);
    }
    let start = Instant::now();
    let clusters: Vec<Vec<QueryId>> = (0..specs.len()).map(|q| vec![q]).collect();
    let per_query = PathEnum::new(order).with_mode(mode);
    let (results, num_shards) = execute_sharded_with(
        &clusters,
        parallelism.workers(),
        // lint:allow(panic-free-hot-path) ci < specs.len(): one cluster per spec
        |ci| SpecSink::new(&specs[ci..=ci]),
        |ci, local, buf| {
            let mut cluster_stats = EnumStats::new(1);
            per_query.run_single_buffered(
                graph,
                // lint:allow(panic-free-hot-path) ci < specs.len(): one cluster per spec
                &specs[ci].query,
                0,
                local,
                &mut cluster_stats,
                buf,
            );
            cluster_stats
        },
    );
    merge_spec_results(&clusters, results, &mut stats, &mut responses);
    stats.num_shards = num_shards;
    stats.add_stage(Stage::Enumeration, start.elapsed());
    let responses = responses
        .into_iter()
        // lint:allow(panic-free-hot-path) merge_spec_results filled every slot: clusters partition the batch
        .map(|r| r.expect("every spec is covered by exactly one cluster"))
        .collect();
    (responses, stats)
}

/// Parallel spec execution against a shared (possibly superset) index.
///
/// `shared = false` runs the `BasicEnum` shape (one query per cluster, no sharing);
/// `shared = true` clusters by neighbourhood similarity exactly like the sequential
/// `BatchEnum` (γ, then the configured [`SplitPolicy`]) and evaluates each
/// cluster's full shared pipeline on the worker pool. Each worker drives a local
/// [`SpecSink`] over its cluster's specs, so a query's early termination — join
/// short-circuits, dropped cluster work — happens inside the worker, and the responses
/// are byte-identical to a sequential [`crate::spec::SpecSink`] run over the same
/// clusters (each query lives in exactly one cluster, evaluated in sequential order).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_specs_parallel_with_index(
    graph: &DiGraph,
    index: &BatchIndex,
    specs: &[QuerySpec],
    order: SearchOrder,
    mode: ExpansionMode,
    gamma: f64,
    shared: bool,
    split: SplitPolicy,
    parallelism: Parallelism,
) -> (Vec<QueryResponse>, EnumStats) {
    let mut stats = EnumStats::new(specs.len());
    let mut responses: Vec<Option<QueryResponse>> = vec![None; specs.len()];
    if specs.is_empty() {
        return (Vec::new(), stats);
    }

    let start = Instant::now();
    let queries: Vec<PathQuery> = specs.iter().map(|s| s.query).collect();
    let clusters: Vec<Vec<QueryId>> = if shared {
        cluster_with_policy(index, &queries, gamma, split, parallelism.workers())
    } else {
        (0..specs.len()).map(|q| vec![q]).collect()
    };
    stats.num_clusters = clusters.len();
    stats.add_stage(Stage::ClusterQuery, start.elapsed());

    let start = Instant::now();
    let per_query = PathEnum::new(order).with_mode(mode);
    let sequential = BatchEnum::new(order, 1.0).with_mode(mode);
    let (results, num_shards) = execute_sharded_with(
        &clusters,
        parallelism.workers(),
        |ci| {
            let cluster_specs: Vec<QuerySpec> =
                // lint:allow(panic-free-hot-path) ci and qid come from the clustering over these specs
                clusters[ci].iter().map(|&qid| specs[qid]).collect();
            SpecSink::new(&cluster_specs)
        },
        |ci, local, buf| {
            if shared {
                let cluster_queries_list: Vec<PathQuery> =
                    // lint:allow(panic-free-hot-path) ci and qid come from the clustering over these queries
                    clusters[ci].iter().map(|&qid| queries[qid]).collect();
                sequential.run_cluster_for_parallel(graph, index, &cluster_queries_list, local, buf)
            } else {
                let mut cluster_stats = EnumStats::new(1);
                per_query.run_with_index_buffered(
                    graph,
                    index,
                    // lint:allow(panic-free-hot-path) unshared clusters are singletons: [ci][0] exists
                    &queries[clusters[ci][0]],
                    0,
                    local,
                    &mut cluster_stats,
                    buf,
                );
                cluster_stats
            }
        },
    );
    merge_spec_results(&clusters, results, &mut stats, &mut responses);
    stats.num_shards = num_shards;
    stats.add_stage(Stage::Enumeration, start.elapsed());
    let responses = responses
        .into_iter()
        // lint:allow(panic-free-hot-path) merge_spec_results filled every slot: clusters partition the batch
        .map(|r| r.expect("every spec is covered by exactly one cluster"))
        .collect();
    (responses, stats)
}

/// The "more servers" baseline: every query is enumerated independently (PathEnum against
/// a shared index, exactly like `BasicEnum`), but queries are spread over worker threads.
///
/// No computation is shared beyond the index, so the total CPU *work* equals `BasicEnum`'s;
/// only the wall-clock time shrinks, and only as long as the per-query costs are balanced.
#[derive(Debug, Clone, Copy)]
pub struct ParallelBasicEnum {
    /// Neighbour expansion order for the per-query searches.
    pub order: SearchOrder,
    /// Half-search expansion mechanics (frontier engine vs recursive oracle).
    pub mode: ExpansionMode,
    /// Worker thread count.
    pub parallelism: Parallelism,
}

impl Default for ParallelBasicEnum {
    fn default() -> Self {
        ParallelBasicEnum {
            order: SearchOrder::default(),
            mode: ExpansionMode::default(),
            parallelism: Parallelism::Auto,
        }
    }
}

impl ParallelBasicEnum {
    /// Creates the runner with an explicit search order and worker count.
    pub fn new(order: SearchOrder, parallelism: Parallelism) -> Self {
        ParallelBasicEnum {
            order,
            mode: ExpansionMode::default(),
            parallelism,
        }
    }

    /// Selects the half-search expansion mode (builder style).
    pub fn with_mode(mut self, mode: ExpansionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Processes the batch, streaming results (in query order) into `sink`.
    pub fn run_batch<S: PathSink>(
        &self,
        graph: &DiGraph,
        queries: &[PathQuery],
        sink: &mut S,
    ) -> EnumStats {
        if queries.is_empty() {
            sink.finish();
            return EnumStats::new(0);
        }
        let start = Instant::now();
        let summary = BatchSummary::of(queries);
        let index = BatchIndex::build(
            graph,
            &summary.sources,
            &summary.targets,
            summary.max_hop_limit,
        );
        let build_time = start.elapsed();
        let mut stats = self.run_batch_with_index(graph, &index, queries, sink);
        stats.add_stage(Stage::BuildIndex, build_time);
        stats
    }

    /// Processes a batch against an already-built (possibly superset) index — the entry
    /// point the long-lived [`Engine`](crate::Engine) uses with its cached index.
    pub fn run_batch_with_index<S: PathSink>(
        &self,
        graph: &DiGraph,
        index: &BatchIndex,
        queries: &[PathQuery],
        sink: &mut S,
    ) -> EnumStats {
        let mut stats = EnumStats::new(queries.len());
        stats.num_clusters = queries.len();
        if queries.is_empty() {
            sink.finish();
            return stats;
        }
        // Every query is its own "cluster": no sharing, maximal parallel slack.
        let start = Instant::now();
        let clusters: Vec<Vec<QueryId>> = (0..queries.len()).map(|q| vec![q]).collect();
        let per_query = PathEnum::new(self.order).with_mode(self.mode);
        let (results, num_shards) =
            execute_sharded(&clusters, self.parallelism.workers(), |ci, local, buf| {
                let mut cluster_stats = EnumStats::new(1);
                per_query.run_with_index_buffered(
                    graph,
                    index,
                    // lint:allow(panic-free-hot-path) ci < queries.len(): one cluster per query
                    &queries[ci],
                    0,
                    local,
                    &mut cluster_stats,
                    buf,
                );
                cluster_stats
            });
        merge_results(&clusters, results, &mut stats, sink);
        stats.num_shards = num_shards;
        stats.add_stage(Stage::Enumeration, start.elapsed());
        sink.finish();
        stats
    }
}

/// Parallel `PathEnum`: the fully independent baseline (per-query index, per-query
/// enumeration) spread over worker threads. This is what a serving engine runs when its
/// configured algorithm is `PathEnum` and parallelism is requested: the per-query index
/// builds are part of the measured work, exactly as in the sequential baseline.
pub(crate) fn run_pathenum_parallel<S: PathSink>(
    graph: &DiGraph,
    queries: &[PathQuery],
    order: SearchOrder,
    mode: ExpansionMode,
    parallelism: Parallelism,
    sink: &mut S,
) -> EnumStats {
    let mut stats = EnumStats::new(queries.len());
    stats.num_clusters = queries.len();
    if queries.is_empty() {
        sink.finish();
        return stats;
    }
    let start = Instant::now();
    let clusters: Vec<Vec<QueryId>> = (0..queries.len()).map(|q| vec![q]).collect();
    let per_query = PathEnum::new(order).with_mode(mode);
    let (results, num_shards) =
        execute_sharded(&clusters, parallelism.workers(), |ci, local, buf| {
            let mut cluster_stats = EnumStats::new(1);
            // lint:allow(panic-free-hot-path) ci < queries.len(): one cluster per query
            per_query.run_single_buffered(graph, &queries[ci], 0, local, &mut cluster_stats, buf);
            cluster_stats
        });
    // The per-query index builds happen inside the workers, so they are part of the
    // parallel region's wall-clock below; they are not reported as a separate BuildIndex
    // stage to keep the stage times a wall-clock decomposition (no double counting).
    merge_results(&clusters, results, &mut stats, sink);
    stats.num_shards = num_shards;
    stats.add_stage(Stage::Enumeration, start.elapsed());
    sink.finish();
    stats
}

/// Parallel `BatchEnum`: clusters are detected exactly as in the sequential algorithm and
/// then evaluated concurrently on the cluster-sharded worker pool. Sharing happens
/// *inside* a cluster (where the common computation lives); across clusters there is
/// nothing to share, so they parallelise embarrassingly.
#[derive(Debug, Clone, Copy)]
pub struct ParallelBatchEnum {
    /// Neighbour expansion order.
    pub order: SearchOrder,
    /// Half-search expansion mechanics (frontier engine vs recursive oracle).
    pub mode: ExpansionMode,
    /// Clustering threshold γ.
    pub gamma: f64,
    /// Worker thread count.
    pub parallelism: Parallelism,
    /// Intra-cluster work splitting (see [`SplitPolicy`]). Dense graphs can collapse a
    /// whole batch into a single cluster, which is maximal sharing but zero parallel
    /// slack (one cluster = one worker) and an unbounded shared-cache footprint.
    /// Splitting keeps sharing within a sub-cluster and gives it up across the split.
    /// Results stay lossless per query, but with any splitting the per-query path
    /// *order* matches a sequential run over the same split clusters, not the unsplit
    /// sequential run. [`SplitPolicy::Never`] (default) preserves the byte-identical
    /// guarantee.
    pub split: SplitPolicy,
}

impl Default for ParallelBatchEnum {
    fn default() -> Self {
        ParallelBatchEnum {
            order: SearchOrder::default(),
            mode: ExpansionMode::default(),
            gamma: crate::batch_enum::DEFAULT_GAMMA,
            parallelism: Parallelism::Auto,
            split: SplitPolicy::Never,
        }
    }
}

impl ParallelBatchEnum {
    /// Creates the runner (no cluster splitting).
    pub fn new(order: SearchOrder, gamma: f64, parallelism: Parallelism) -> Self {
        ParallelBatchEnum {
            order,
            mode: ExpansionMode::default(),
            gamma,
            parallelism,
            split: SplitPolicy::Never,
        }
    }

    /// Selects the half-search expansion mode (builder style).
    pub fn with_mode(mut self, mode: ExpansionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Returns the runner with the given intra-cluster split policy.
    pub fn with_split_policy(mut self, split: SplitPolicy) -> Self {
        self.split = split;
        self
    }

    /// Compat wrapper over [`ParallelBatchEnum::with_split_policy`]: `Some(c > 0)` caps
    /// clusters at `c` queries, `Some(0)` and `None` never split.
    pub fn with_max_cluster_size(self, cap: Option<usize>) -> Self {
        self.with_split_policy(SplitPolicy::from_cap(cap))
    }

    /// Processes the batch, streaming results into `sink`.
    pub fn run_batch<S: PathSink>(
        &self,
        graph: &DiGraph,
        queries: &[PathQuery],
        sink: &mut S,
    ) -> EnumStats {
        if queries.is_empty() {
            sink.finish();
            return EnumStats::new(0);
        }
        // Index construction is identical to the sequential BatchEnum.
        let start = Instant::now();
        let summary = BatchSummary::of(queries);
        let index = BatchIndex::build(
            graph,
            &summary.sources,
            &summary.targets,
            summary.max_hop_limit,
        );
        let build_time = start.elapsed();
        let mut stats = self.run_batch_with_index(graph, &index, queries, sink);
        stats.add_stage(Stage::BuildIndex, build_time);
        stats
    }

    /// Processes a batch against an already-built (possibly superset) index: clustering on
    /// the calling thread, cluster evaluation on the worker pool, deterministic merge.
    pub fn run_batch_with_index<S: PathSink>(
        &self,
        graph: &DiGraph,
        index: &BatchIndex,
        queries: &[PathQuery],
        sink: &mut S,
    ) -> EnumStats {
        let mut stats = EnumStats::new(queries.len());
        if queries.is_empty() {
            sink.finish();
            return stats;
        }

        // Clustering is identical to the sequential BatchEnum; the split policy then
        // breaks oversized clusters into bounded, consecutive sub-clusters.
        let start = Instant::now();
        let clusters = cluster_with_policy(
            index,
            queries,
            self.gamma,
            self.split,
            self.parallelism.workers(),
        );
        stats.num_clusters = clusters.len();
        stats.add_stage(Stage::ClusterQuery, start.elapsed());

        // Evaluate clusters on the sharded pool; each worker runs the sequential shared
        // pipeline on its cluster (detection + topological enumeration). γ = 1 inside the
        // worker keeps the cluster as a single group (it has already been formed by the
        // outer clustering) without re-clustering cost.
        let start = Instant::now();
        let sequential = BatchEnum::new(self.order, 1.0).with_mode(self.mode);
        let (results, num_shards) =
            execute_sharded(&clusters, self.parallelism.workers(), |ci, local, buf| {
                let cluster_queries_list: Vec<PathQuery> =
                    // lint:allow(panic-free-hot-path) ci and qid come from the clustering over these queries
                    clusters[ci].iter().map(|&qid| queries[qid]).collect();
                sequential.run_cluster_for_parallel(graph, index, &cluster_queries_list, local, buf)
            });
        merge_results(&clusters, results, &mut stats, sink);
        stats.num_shards = num_shards;
        stats.add_stage(Stage::Enumeration, start.elapsed());
        sink.finish();
        stats
    }
}

impl BatchEnum {
    /// Evaluates one pre-formed cluster against an existing index (used by the parallel
    /// wrapper): detection + shared enumeration, but no index build and no re-clustering.
    pub(crate) fn run_cluster_for_parallel<S: PathSink>(
        &self,
        graph: &DiGraph,
        index: &BatchIndex,
        queries: &[PathQuery],
        sink: &mut S,
        buffers: &mut SearchBuffers,
    ) -> EnumStats {
        let mut stats = EnumStats::new(queries.len());
        let cluster: Vec<QueryId> = (0..queries.len()).collect();
        self.process_cluster(graph, index, queries, &cluster, sink, &mut stats, buffers);
        stats
    }
}

/// Convenience comparison record used by the parallelism ablation: the same batch timed
/// sequentially and with a given worker count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelComparison {
    /// Wall-clock seconds of the sequential run.
    pub sequential_seconds: f64,
    /// Wall-clock seconds of the parallel run.
    pub parallel_seconds: f64,
    /// Number of worker threads used by the parallel run.
    pub workers: usize,
}

impl ParallelComparison {
    /// Observed speed-up (sequential / parallel).
    pub fn speedup(&self) -> f64 {
        if self.parallel_seconds <= 0.0 {
            return f64::INFINITY;
        }
        self.sequential_seconds / self.parallel_seconds
    }
}

/// Times `BasicEnum` sequentially vs [`ParallelBasicEnum`] with `workers` threads on the
/// same batch (results are counted, not collected).
pub fn compare_parallel_basic(
    graph: &DiGraph,
    queries: &[PathQuery],
    order: SearchOrder,
    workers: usize,
) -> ParallelComparison {
    use crate::sink::CountSink;

    let start = Instant::now();
    let mut sequential_sink = CountSink::new(queries.len());
    BasicEnum::new(order).run_batch(graph, queries, &mut sequential_sink);
    let sequential_seconds = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let mut parallel_sink = CountSink::new(queries.len());
    ParallelBasicEnum::new(order, Parallelism::Fixed(workers)).run_batch(
        graph,
        queries,
        &mut parallel_sink,
    );
    let parallel_seconds = start.elapsed().as_secs_f64();

    debug_assert_eq!(sequential_sink.counts(), parallel_sink.counts());
    ParallelComparison {
        sequential_seconds,
        parallel_seconds,
        workers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::enumerate_reference;
    use crate::sink::CountSink;
    use hcsp_graph::generators::erdos_renyi::gnm_random;
    use hcsp_graph::generators::regular::{complete, grid};

    fn reference_counts(graph: &DiGraph, queries: &[PathQuery]) -> Vec<u64> {
        queries
            .iter()
            .map(|q| enumerate_reference(graph, q).len() as u64)
            .collect()
    }

    #[test]
    fn shard_plan_covers_every_cluster_once_and_balances() {
        let sizes = vec![5, 1, 1, 9, 2, 2, 1, 4];
        let shards = plan_shards(&sizes, 3);
        assert!(shards.len() <= 3);
        let mut seen: Vec<usize> = shards.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..sizes.len()).collect::<Vec<_>>());
        // LPT keeps the max shard load below the trivial "all in one" bound.
        let loads: Vec<usize> = shards
            .iter()
            .map(|s| s.iter().map(|&c| sizes[c]).sum())
            .collect();
        assert!(*loads.iter().max().unwrap() < sizes.iter().sum());
        // Deterministic.
        assert_eq!(shards, plan_shards(&sizes, 3));
    }

    #[test]
    fn shard_plan_degenerate_inputs() {
        assert_eq!(plan_shards(&[], 4), Vec::<Vec<usize>>::new());
        assert_eq!(plan_shards(&[3], 4), vec![vec![0]]);
        // More shards than clusters collapses to one cluster per shard.
        let shards = plan_shards(&[1, 1, 1], 16);
        assert_eq!(shards.len(), 3);
    }

    #[test]
    fn shard_deques_drain_everything_with_stealing() {
        let deques = ShardDeques::seed(10, 3);
        // Worker 2 drains the entire set alone: its own deque first, then steals.
        let mut seen = Vec::new();
        while let Some(s) = deques.next(2) {
            seen.push(s);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert_eq!(deques.next(0), None);
    }

    #[test]
    fn parallel_basic_matches_reference() {
        let g = grid(4, 4);
        let queries = vec![
            PathQuery::new(0u32, 15u32, 6),
            PathQuery::new(1u32, 15u32, 6),
            PathQuery::new(0u32, 14u32, 6),
            PathQuery::new(4u32, 15u32, 5),
            PathQuery::new(0u32, 11u32, 5),
        ];
        for workers in [1, 2, 4] {
            let mut sink = CountSink::new(queries.len());
            let stats = ParallelBasicEnum::new(SearchOrder::VertexId, Parallelism::Fixed(workers))
                .run_batch(&g, &queries, &mut sink);
            assert_eq!(
                sink.counts(),
                reference_counts(&g, &queries),
                "workers = {workers}"
            );
            assert_eq!(stats.num_queries, queries.len());
            assert!(stats.counters.produced_paths > 0);
        }
    }

    #[test]
    fn parallel_batch_matches_reference() {
        for seed in 0..2 {
            let g = gnm_random(70, 400, seed).unwrap();
            let queries = vec![
                PathQuery::new(0u32, 30u32, 5),
                PathQuery::new(0u32, 31u32, 5),
                PathQuery::new(1u32, 30u32, 4),
                PathQuery::new(2u32, 40u32, 4),
                PathQuery::new(3u32, 41u32, 5),
                PathQuery::new(3u32, 42u32, 4),
            ];
            for workers in [1, 3] {
                let mut sink = CountSink::new(queries.len());
                let stats = ParallelBatchEnum::new(
                    SearchOrder::DistanceThenDegree,
                    0.4,
                    Parallelism::Fixed(workers),
                )
                .run_batch(&g, &queries, &mut sink);
                assert_eq!(
                    sink.counts(),
                    reference_counts(&g, &queries),
                    "workers = {workers}"
                );
                assert!(stats.num_clusters >= 1);
            }
        }
    }

    #[test]
    fn parallel_output_is_byte_identical_to_sequential() {
        let g = gnm_random(60, 360, 5).unwrap();
        let queries = vec![
            PathQuery::new(0u32, 30u32, 5),
            PathQuery::new(0u32, 31u32, 5),
            PathQuery::new(1u32, 30u32, 4),
            PathQuery::new(2u32, 31u32, 5),
        ];
        let mut sequential = crate::sink::CollectSink::new(queries.len());
        let seq_stats =
            BatchEnum::new(SearchOrder::VertexId, 0.4).run_batch(&g, &queries, &mut sequential);
        for workers in [1, 2, 4, 8] {
            let mut parallel = crate::sink::CollectSink::new(queries.len());
            let par_stats =
                ParallelBatchEnum::new(SearchOrder::VertexId, 0.4, Parallelism::Fixed(workers))
                    .run_batch(&g, &queries, &mut parallel);
            // Not just the same path sets: the same paths in the same order per query.
            assert_eq!(parallel.all(), sequential.all(), "workers = {workers}");
            assert_eq!(par_stats.counters, seq_stats.counters);
            assert_eq!(par_stats.num_clusters, seq_stats.num_clusters);
            assert_eq!(
                par_stats.num_shared_subqueries,
                seq_stats.num_shared_subqueries
            );
        }
    }

    #[test]
    fn cluster_cap_splits_but_stays_lossless() {
        let g = gnm_random(70, 400, 3).unwrap();
        let queries: Vec<PathQuery> = (0..12)
            .map(|i| PathQuery::new(i as u32, (30 + i / 2) as u32, 4 + (i % 2) as u32))
            .collect();
        let reference = reference_counts(&g, &queries);

        let uncapped = ParallelBatchEnum::new(SearchOrder::VertexId, 0.4, Parallelism::Fixed(2));
        let mut sink = CountSink::new(queries.len());
        let uncapped_stats = uncapped.run_batch(&g, &queries, &mut sink);
        assert_eq!(sink.counts(), reference);

        let capped = uncapped.with_max_cluster_size(Some(2));
        let mut sink = CountSink::new(queries.len());
        let capped_stats = capped.run_batch(&g, &queries, &mut sink);
        assert_eq!(sink.counts(), reference, "splitting must be lossless");
        assert!(
            capped_stats.num_clusters >= uncapped_stats.num_clusters,
            "a cap can only increase the cluster count"
        );
        assert!(capped_stats.num_clusters >= queries.len() / 2);

        // A zero cap means "no cap".
        assert_eq!(
            capped.with_max_cluster_size(Some(0)).split,
            SplitPolicy::Never
        );
        assert_eq!(capped.with_max_cluster_size(None).split, SplitPolicy::Never);
        assert_eq!(capped.split, SplitPolicy::Cap(2));
        assert_eq!(ParallelBatchEnum::default().split, SplitPolicy::Never);
    }

    #[test]
    fn auto_split_policy_restores_parallel_slack_on_one_giant_cluster() {
        let g = complete(8);
        // All-pairs-style queries over a complete graph collapse into one similarity
        // cluster at a permissive γ: the regime Auto exists for.
        let queries: Vec<PathQuery> = (1..8).map(|i| PathQuery::new(0u32, i as u32, 3)).collect();
        let reference = reference_counts(&g, &queries);

        let never = ParallelBatchEnum::new(SearchOrder::VertexId, 0.1, Parallelism::Fixed(4));
        let mut sink = CountSink::new(queries.len());
        let never_stats = never.run_batch(&g, &queries, &mut sink);
        assert_eq!(sink.counts(), reference);
        assert_eq!(never_stats.num_clusters, 1, "the regime under test");
        assert_eq!(never_stats.num_shards, 1, "one cluster = one steal unit");

        let auto = never.with_split_policy(SplitPolicy::Auto);
        let mut sink = CountSink::new(queries.len());
        let auto_stats = auto.run_batch(&g, &queries, &mut sink);
        assert_eq!(sink.counts(), reference, "splitting must be lossless");
        assert!(
            auto_stats.num_shards > 1,
            "Auto must restore >1 effective shard, got {}",
            auto_stats.num_shards
        );
        assert!(auto_stats.num_clusters > never_stats.num_clusters);
    }

    #[test]
    fn auto_split_policy_leaves_well_clustered_batches_alone() {
        let clusters = vec![vec![0, 1, 2], vec![3, 4], vec![5, 6, 7]];
        // Already >= workers clusters: untouched.
        assert_eq!(
            SplitPolicy::Auto.apply(clusters.clone(), 3, 8),
            clusters.clone()
        );
        // Fewer clusters than workers: capped at ⌈8 / (2·8)⌉ = 1.
        let split = SplitPolicy::Auto.apply(clusters.clone(), 8, 8);
        assert_eq!(split.len(), 8);
        assert!(split.iter().all(|c| c.len() == 1));
        // Never and Cap(0) are identity; from_cap maps the legacy knob.
        assert_eq!(SplitPolicy::Never.apply(clusters.clone(), 8, 8), clusters);
        assert_eq!(SplitPolicy::from_cap(Some(3)), SplitPolicy::Cap(3));
        assert_eq!(SplitPolicy::from_cap(Some(0)), SplitPolicy::Never);
        assert_eq!(SplitPolicy::from_cap(None), SplitPolicy::Never);
        assert_eq!(SplitPolicy::Cap(3).cap(), Some(3));
        assert_eq!(SplitPolicy::Cap(0).cap(), None);
        assert_eq!(SplitPolicy::Auto.cap(), None);
        assert_eq!(SplitPolicy::default(), SplitPolicy::Never);
    }

    #[test]
    fn split_clusters_chunks_in_order() {
        let clusters = vec![vec![0, 1, 2, 3, 4], vec![5], vec![6, 7]];
        assert_eq!(
            split_clusters(clusters, 2),
            vec![vec![0, 1], vec![2, 3], vec![4], vec![5], vec![6, 7]]
        );
    }

    #[test]
    fn parallel_merge_honours_sink_verdicts() {
        let g = complete(6);
        let queries = vec![PathQuery::new(0u32, 5u32, 3), PathQuery::new(1u32, 4u32, 3)];
        let reference = reference_counts(&g, &queries);
        assert!(reference.iter().all(|&c| c > 2));

        // SkipQuery after 2 paths per query: each query delivers exactly 2.
        let mut per_query = vec![0u64; queries.len()];
        {
            let mut sink = crate::sink::ControlSink::new(|q, _p: &[hcsp_graph::VertexId]| {
                per_query[q] += 1;
                if per_query[q] >= 2 {
                    SinkFlow::SkipQuery
                } else {
                    SinkFlow::Continue
                }
            });
            ParallelBasicEnum::new(SearchOrder::VertexId, Parallelism::Fixed(2))
                .run_batch(&g, &queries, &mut sink);
        }
        assert_eq!(per_query, vec![2, 2], "no accept past a SkipQuery verdict");

        // Stop after the first path: delivery ends for the whole batch.
        let mut total = 0u64;
        {
            let mut sink = crate::sink::ControlSink::new(|_q, _p: &[hcsp_graph::VertexId]| {
                total += 1;
                SinkFlow::Stop
            });
            ParallelBasicEnum::new(SearchOrder::VertexId, Parallelism::Fixed(2))
                .run_batch(&g, &queries, &mut sink);
        }
        assert_eq!(total, 1, "no accept past a Stop verdict");
    }

    #[test]
    fn parallel_collect_sink_receives_every_path() {
        let g = complete(6);
        let queries = vec![PathQuery::new(0u32, 5u32, 3), PathQuery::new(1u32, 4u32, 3)];
        let mut sink = crate::sink::CollectSink::new(queries.len());
        ParallelBasicEnum::new(SearchOrder::VertexId, Parallelism::Fixed(2))
            .run_batch(&g, &queries, &mut sink);
        let reference = reference_counts(&g, &queries);
        for (i, &expected) in reference.iter().enumerate() {
            assert_eq!(sink.paths(i).len() as u64, expected);
            for p in sink.paths(i).iter() {
                assert_eq!(p[0], queries[i].source);
                assert_eq!(*p.last().unwrap(), queries[i].target);
            }
        }
    }

    #[test]
    fn empty_batches_and_degenerate_worker_counts() {
        let g = complete(3);
        let mut sink = CountSink::new(0);
        let stats = ParallelBasicEnum::default().run_batch(&g, &[], &mut sink);
        assert_eq!(stats.num_queries, 0);
        let stats = ParallelBatchEnum::default().run_batch(&g, &[], &mut sink);
        assert_eq!(stats.num_queries, 0);
        assert_eq!(Parallelism::Fixed(0).workers(), 1);
        assert!(Parallelism::Auto.workers() >= 1);
        assert_eq!(Parallelism::default(), Parallelism::Auto);
    }

    #[test]
    fn comparison_reports_consistent_numbers() {
        let g = grid(4, 4);
        let queries = vec![
            PathQuery::new(0u32, 15u32, 6),
            PathQuery::new(1u32, 15u32, 6),
        ];
        let cmp = compare_parallel_basic(&g, &queries, SearchOrder::VertexId, 2);
        assert_eq!(cmp.workers, 2);
        assert!(cmp.sequential_seconds >= 0.0);
        assert!(cmp.parallel_seconds >= 0.0);
        assert!(cmp.speedup() > 0.0);
    }
}
