//! The materialisation experiment of Fig. 3 (c).
//!
//! The motivation for computation sharing is the huge gap between *enumerating* the
//! HC-s-t paths of a query and merely *retrieving and scanning* already-materialised
//! results: the paper measures roughly three orders of magnitude. This module provides
//! both sides of that comparison on top of the same machinery:
//!
//! * [`materialize_batch`] runs `BasicEnum+` and stores every result path of every query
//!   into a [`MaterializedResults`] arena, and
//! * [`MaterializedResults::scan`] replays a query's results with a single pass over the
//!   flat buffer (a checksum is computed so the scan cannot be optimised away).

use crate::basic_enum::BasicEnum;
use crate::path::PathSet;
use crate::query::{PathQuery, QueryId};
use crate::search_order::SearchOrder;
use crate::sink::CollectSink;
use crate::stats::EnumStats;
use hcsp_graph::DiGraph;

/// Materialised result paths of a batch, indexed by query.
#[derive(Debug, Clone, Default)]
pub struct MaterializedResults {
    per_query: Vec<PathSet>,
}

impl MaterializedResults {
    /// The paths of one query.
    pub fn paths(&self, query: QueryId) -> &PathSet {
        &self.per_query[query]
    }

    /// Number of queries covered.
    pub fn num_queries(&self) -> usize {
        self.per_query.len()
    }

    /// Total number of materialised paths across all queries.
    pub fn total_paths(&self) -> usize {
        self.per_query.iter().map(PathSet::len).sum()
    }

    /// Total number of stored vertices (the volume the scan has to touch).
    pub fn total_vertices(&self) -> usize {
        self.per_query.iter().map(PathSet::total_vertices).sum()
    }

    /// Scans (retrieves) the results of one query, returning `(paths_seen, checksum)`.
    ///
    /// The checksum folds every vertex id so that the compiler cannot elide the scan; this
    /// is the "directly retrieving the corresponding HC-s-t paths followed by scanning
    /// them once" measurement of Fig. 3 (c).
    pub fn scan(&self, query: QueryId) -> (usize, u64) {
        let set = &self.per_query[query];
        let mut checksum = 0u64;
        for path in set.iter() {
            for v in path {
                checksum = checksum.wrapping_mul(31).wrapping_add(u64::from(v.raw()));
            }
        }
        (set.len(), checksum)
    }

    /// Scans every query's results, returning the combined `(paths_seen, checksum)`.
    pub fn scan_all(&self) -> (usize, u64) {
        let mut total = 0usize;
        let mut checksum = 0u64;
        for q in 0..self.per_query.len() {
            let (n, c) = self.scan(q);
            total += n;
            checksum ^= c;
        }
        (total, checksum)
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.per_query.iter().map(PathSet::heap_bytes).sum()
    }
}

/// Enumerates and materialises the results of every query in the batch using `BasicEnum`
/// with the given search order (the paper materialises with `BasicEnum+`).
pub fn materialize_batch(
    graph: &DiGraph,
    queries: &[PathQuery],
    order: SearchOrder,
) -> (MaterializedResults, EnumStats) {
    let mut sink = CollectSink::new(queries.len());
    let stats = BasicEnum::new(order).run_batch(graph, queries, &mut sink);
    (
        MaterializedResults {
            per_query: sink.into_inner(),
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::enumerate_reference;
    use hcsp_graph::generators::regular::{complete, layered_dag};

    #[test]
    fn materialized_counts_match_reference() {
        let g = layered_dag(3, 2);
        let sink_v = (g.num_vertices() - 1) as u32;
        let queries = vec![
            PathQuery::new(0u32, sink_v, 4),
            PathQuery::new(0u32, sink_v, 3),
        ];
        let (mat, stats) = materialize_batch(&g, &queries, SearchOrder::DistanceThenDegree);
        assert_eq!(mat.num_queries(), 2);
        assert_eq!(
            mat.paths(0).len(),
            enumerate_reference(&g, &queries[0]).len()
        );
        assert_eq!(mat.paths(1).len(), 0);
        assert_eq!(mat.total_paths(), 8);
        assert_eq!(stats.counters.produced_paths, 8);
        assert!(mat.heap_bytes() > 0);
    }

    #[test]
    fn scan_visits_every_stored_path() {
        let g = complete(5);
        let queries = vec![PathQuery::new(0u32, 4u32, 3)];
        let (mat, _) = materialize_batch(&g, &queries, SearchOrder::VertexId);
        let (n, checksum) = mat.scan(0);
        assert_eq!(n, mat.paths(0).len());
        assert_ne!(checksum, 0);
        let (all, _) = mat.scan_all();
        assert_eq!(all, mat.total_paths());
        assert!(mat.total_vertices() >= mat.total_paths() * 2);
    }

    #[test]
    fn empty_batch_materializes_nothing() {
        let g = complete(3);
        let (mat, _) = materialize_batch(&g, &[], SearchOrder::VertexId);
        assert_eq!(mat.num_queries(), 0);
        assert_eq!(mat.total_paths(), 0);
        assert_eq!(mat.scan_all(), (0, 0));
    }
}
