//! Reusable per-thread search buffers: the allocation-free enumeration hot path.
//!
//! The DFS half searches and the `⊕` join are the inner loops of every algorithm in this
//! crate. Written naively they allocate constantly: a fresh candidate `Vec` per expanded
//! vertex, a linear `stack.contains` scan per candidate, fresh `PathSet`s per query, and a
//! fresh hash map per join. [`SearchBuffers`] hoists all of that state out of the hot path
//! so a batch (or a worker thread serving many batches) allocates once and then reuses:
//!
//! * **Prefix stack** — the current DFS prefix, one push/pop per expansion.
//! * **Visited marks** — an epoch-stamped `u32` array over the vertex set; membership of
//!   the current prefix is O(1) instead of a linear stack scan, and "clearing" it for the
//!   next traversal is a single epoch increment, not an O(|V|) wipe.
//! * **Candidate arena** — a single flat `Vec` holding the candidate lists of *all* open
//!   recursion levels back to back: a level records its start offset, appends its
//!   candidates, iterates them by index, and truncates back on exit. Deeper levels only
//!   ever append after the current level's range, so no per-level allocation is needed.
//! * **Half-search path sets** — the forward/backward prefix sets of a query, cleared
//!   (capacity retained) between queries instead of reallocated.
//! * **Join scratch** — the bucketed join-vertex table and the assembly buffer of the
//!   `⊕` concatenation (see [`JoinScratch`]).
//!
//! Buffers are deliberately `!Sync`-by-use: every worker thread owns its own
//! `SearchBuffers`, which is what the cluster-sharded parallel executor
//! ([`crate::parallel`]) hands each worker.

use crate::path::PathSet;
use hcsp_graph::{DiGraph, VertexId};

/// Epoch-stamped membership marks over the vertex set.
///
/// `mark(v)` stamps `v` with the current epoch, `contains(v)` compares stamps, and
/// [`VisitMarks::reset`] starts a new traversal by bumping the epoch — O(1) instead of
/// clearing the whole array. The stamp array is sized lazily to the graph.
#[derive(Debug, Default, Clone)]
pub struct VisitMarks {
    stamps: Vec<u32>,
    epoch: u32,
}

impl VisitMarks {
    /// Starts a new traversal over a graph of `num_vertices` vertices: all marks cleared.
    pub fn reset(&mut self, num_vertices: usize) {
        if self.stamps.len() < num_vertices {
            self.stamps.resize(num_vertices, 0);
        }
        if self.epoch == u32::MAX {
            // Epoch wrap: wipe once every 2^32 - 1 traversals.
            self.stamps.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Marks `v` as a member of the current prefix.
    #[inline]
    pub fn mark(&mut self, v: VertexId) {
        // lint:allow(panic-free-hot-path) v.index() < stamps.len(): reset() sized the table to the graph
        self.stamps[v.index()] = self.epoch;
    }

    /// Unmarks `v` (on DFS backtrack).
    #[inline]
    pub fn unmark(&mut self, v: VertexId) {
        // lint:allow(panic-free-hot-path) v was marked first, so reset() already covered its index
        self.stamps[v.index()] = 0;
    }

    /// Whether `v` is on the current prefix.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        // lint:allow(panic-free-hot-path) v.index() < stamps.len(): reset() sized the table to the graph
        self.stamps[v.index()] == self.epoch
    }
}

/// Reusable scratch state of the `⊕` join (see [`crate::concat::concatenate_scratch`]).
///
/// The join indexes the backward prefix set by its end (join) vertex. A per-call hash map
/// would pay an allocation per bucket; the scratch instead keeps a CSR-style bucket table
/// built once per backward set: the sorted distinct end vertices, one contiguous run of
/// `(path index, hops)` entries per end vertex, and offsets delimiting the runs. A
/// forward prefix then binary-searches `ends` once and sweeps its run without any
/// per-candidate comparisons or suffix-length fetches. All buffers are reused across
/// joins; only capacity growth ever allocates.
#[derive(Debug, Default, Clone)]
pub struct JoinScratch {
    /// Sorted distinct end (join) vertices of the prepared backward set.
    pub(crate) ends: Vec<VertexId>,
    /// CSR offsets into `entries`: bucket `b` spans `entries[offsets[b]..offsets[b + 1]]`.
    pub(crate) offsets: Vec<u32>,
    /// `(backward path index, backward hops)` entries, bucket by bucket; index-ascending
    /// within each bucket, which pins the emission order.
    pub(crate) entries: Vec<(u32, u32)>,
    /// Sort scratch of [`crate::concat::prepare_suffixes`].
    pub(crate) pairs: Vec<(VertexId, u32)>,
    /// Assembly buffer for one joined path.
    pub(crate) assembled: Vec<VertexId>,
}

/// One open level of the frontier traversal: a contiguous candidate run
/// `candidates[start..end]` with `cursor` marking the next candidate to take.
///
/// The frontier engine replaces the recursion stack of the DFS with a `Vec<LevelRun>`:
/// descending pushes a run, exhausting a run pops it. Because deeper runs only ever
/// append after `end`, truncating the arena back to `start` on pop reclaims the space
/// with no per-level allocation — the same discipline the recursive engine applies
/// implicitly through its call stack.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LevelRun {
    /// First candidate of this level in the arena.
    pub(crate) start: usize,
    /// Next candidate to expand (`start..=end`).
    pub(crate) cursor: usize,
    /// One past the last candidate of this level.
    pub(crate) end: usize,
}

/// Per-thread reusable buffers of the enumeration hot path.
///
/// Create one per worker (or per batch) and pass it to the `*_buffered` entry points of
/// [`crate::pathenum::PathEnum`], [`crate::basic_enum::BasicEnum`] and
/// [`crate::batch_enum::BatchEnum`]. The convenience (non-`_buffered`) entry points create
/// a transient instance per call, which preserves their old behaviour at the old cost.
#[derive(Debug, Default, Clone)]
pub struct SearchBuffers {
    /// Current DFS prefix (root first).
    pub(crate) stack: Vec<VertexId>,
    /// O(1) membership of the current prefix.
    pub(crate) marks: VisitMarks,
    /// Flat candidate arena shared by all open recursion levels.
    pub(crate) candidates: Vec<VertexId>,
    /// Open levels of the iterative frontier traversal (empty while the recursive
    /// engine runs; it keeps its levels on the call stack).
    pub(crate) levels: Vec<LevelRun>,
    /// Sort keys parallel to `candidates`: `(dist_towards_anchor, degree)` per
    /// candidate, filled by the frontier fill pass so ordering never re-derives them.
    pub(crate) cand_keys: Vec<(u32, u32)>,
    /// Reusable `(dist, degree, vertex)` triples for the keyed candidate sort.
    pub(crate) sort_buf: Vec<(u32, u32, VertexId)>,
    /// Reusable forward half-search prefix set.
    pub(crate) forward: PathSet,
    /// Reusable backward half-search prefix set.
    pub(crate) backward: PathSet,
    /// Reusable join scratch.
    pub(crate) join: JoinScratch,
}

impl SearchBuffers {
    /// Creates empty buffers; arrays grow lazily to the graphs they are used on.
    pub fn new() -> Self {
        SearchBuffers::default()
    }

    /// Creates buffers pre-sized for `graph` (avoids the first-use resize).
    pub fn for_graph(graph: &DiGraph) -> Self {
        let mut buffers = SearchBuffers::default();
        buffers.marks.reset(graph.num_vertices());
        buffers
    }

    /// Prepares the stack/marks/arena for a fresh traversal over `graph`.
    ///
    /// Returns with an empty stack, all marks cleared, and an empty candidate arena;
    /// allocations are retained.
    pub(crate) fn begin_traversal(&mut self, graph: &DiGraph) {
        self.stack.clear();
        self.candidates.clear();
        self.levels.clear();
        self.cand_keys.clear();
        self.marks.reset(graph.num_vertices());
    }

    /// Sorts the candidate run `candidates[start..end]` by its precomputed
    /// `(dist, degree)` keys, ties broken by vertex id — the exact total order of
    /// [`SearchOrder::DistanceThenDegree`](crate::search_order::SearchOrder), but over
    /// keys recorded during the fill pass instead of re-derived per candidate.
    pub(crate) fn sort_run_by_keys(&mut self, start: usize, end: usize) {
        self.sort_buf.clear();
        self.sort_buf.extend(
            // lint:allow(panic-free-hot-path) start..end is a level run the fill pass recorded
            self.candidates[start..end]
                .iter()
                // lint:allow(panic-free-hot-path) cand_keys grows in lockstep with candidates
                .zip(&self.cand_keys[start..end])
                .map(|(&w, &(d, deg))| (d, deg, w)),
        );
        self.sort_buf.sort_unstable();
        for (i, &(d, deg, w)) in self.sort_buf.iter().enumerate() {
            // lint:allow(panic-free-hot-path) sort_buf holds exactly end - start entries
            self.candidates[start + i] = w;
            // lint:allow(panic-free-hot-path) same run as the line above
            self.cand_keys[start + i] = (d, deg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcsp_graph::generators::regular::grid;

    fn v(x: u32) -> VertexId {
        VertexId(x)
    }

    #[test]
    fn marks_track_membership_per_epoch() {
        let mut marks = VisitMarks::default();
        marks.reset(10);
        assert!(!marks.contains(v(3)));
        marks.mark(v(3));
        assert!(marks.contains(v(3)));
        marks.unmark(v(3));
        assert!(!marks.contains(v(3)));

        marks.mark(v(7));
        marks.reset(10);
        assert!(!marks.contains(v(7)), "reset clears all marks");
    }

    #[test]
    fn marks_grow_with_the_graph() {
        let mut marks = VisitMarks::default();
        marks.reset(2);
        marks.mark(v(1));
        marks.reset(100);
        marks.mark(v(99));
        assert!(marks.contains(v(99)));
        assert!(!marks.contains(v(1)));
    }

    #[test]
    fn epoch_wrap_wipes_stale_stamps() {
        let mut marks = VisitMarks {
            stamps: vec![u32::MAX - 1; 4],
            epoch: u32::MAX - 1,
        };
        // Stale stamps from the pre-wrap era must not leak into the post-wrap epoch.
        assert!(marks.contains(v(0)));
        marks.reset(4);
        assert!(!marks.contains(v(0)));
        marks.reset(4);
        assert!(!marks.contains(v(0)));
        marks.mark(v(2));
        assert!(marks.contains(v(2)));
    }

    #[test]
    fn begin_traversal_clears_state_but_keeps_capacity() {
        let g = grid(3, 3);
        let mut buffers = SearchBuffers::for_graph(&g);
        buffers.stack.push(v(0));
        buffers.candidates.extend([v(1), v(2)]);
        buffers.cand_keys.extend([(1, 2), (1, 2)]);
        buffers.levels.push(LevelRun {
            start: 0,
            cursor: 0,
            end: 2,
        });
        buffers.marks.mark(v(0));
        let stack_cap = buffers.stack.capacity();
        buffers.begin_traversal(&g);
        assert!(buffers.stack.is_empty());
        assert!(buffers.candidates.is_empty());
        assert!(buffers.levels.is_empty());
        assert!(buffers.cand_keys.is_empty());
        assert!(!buffers.marks.contains(v(0)));
        assert!(buffers.stack.capacity() >= stack_cap);
    }
}
