//! Reusable per-thread search buffers: the allocation-free enumeration hot path.
//!
//! The DFS half searches and the `⊕` join are the inner loops of every algorithm in this
//! crate. Written naively they allocate constantly: a fresh candidate `Vec` per expanded
//! vertex, a linear `stack.contains` scan per candidate, fresh `PathSet`s per query, and a
//! fresh hash map per join. [`SearchBuffers`] hoists all of that state out of the hot path
//! so a batch (or a worker thread serving many batches) allocates once and then reuses:
//!
//! * **Prefix stack** — the current DFS prefix, one push/pop per expansion.
//! * **Visited marks** — an epoch-stamped `u32` array over the vertex set; membership of
//!   the current prefix is O(1) instead of a linear stack scan, and "clearing" it for the
//!   next traversal is a single epoch increment, not an O(|V|) wipe.
//! * **Candidate arena** — a single flat `Vec` holding the candidate lists of *all* open
//!   recursion levels back to back: a level records its start offset, appends its
//!   candidates, iterates them by index, and truncates back on exit. Deeper levels only
//!   ever append after the current level's range, so no per-level allocation is needed.
//! * **Half-search path sets** — the forward/backward prefix sets of a query, cleared
//!   (capacity retained) between queries instead of reallocated.
//! * **Join scratch** — the sorted join-vertex table and the assembly buffer of the `⊕`
//!   concatenation (see [`JoinScratch`]).
//!
//! Buffers are deliberately `!Sync`-by-use: every worker thread owns its own
//! `SearchBuffers`, which is what the cluster-sharded parallel executor
//! ([`crate::parallel`]) hands each worker.

use crate::path::PathSet;
use hcsp_graph::{DiGraph, VertexId};

/// Epoch-stamped membership marks over the vertex set.
///
/// `mark(v)` stamps `v` with the current epoch, `contains(v)` compares stamps, and
/// [`VisitMarks::reset`] starts a new traversal by bumping the epoch — O(1) instead of
/// clearing the whole array. The stamp array is sized lazily to the graph.
#[derive(Debug, Default, Clone)]
pub struct VisitMarks {
    stamps: Vec<u32>,
    epoch: u32,
}

impl VisitMarks {
    /// Starts a new traversal over a graph of `num_vertices` vertices: all marks cleared.
    pub fn reset(&mut self, num_vertices: usize) {
        if self.stamps.len() < num_vertices {
            self.stamps.resize(num_vertices, 0);
        }
        if self.epoch == u32::MAX {
            // Epoch wrap: wipe once every 2^32 - 1 traversals.
            self.stamps.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Marks `v` as a member of the current prefix.
    #[inline]
    pub fn mark(&mut self, v: VertexId) {
        self.stamps[v.index()] = self.epoch;
    }

    /// Unmarks `v` (on DFS backtrack).
    #[inline]
    pub fn unmark(&mut self, v: VertexId) {
        self.stamps[v.index()] = 0;
    }

    /// Whether `v` is on the current prefix.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.stamps[v.index()] == self.epoch
    }
}

/// Reusable scratch state of the `⊕` join (see [`crate::concat::concatenate_scratch`]).
///
/// The join indexes the backward prefix set by its end (join) vertex. A per-call hash map
/// would pay an allocation per bucket; the scratch instead keeps one flat, sorted
/// `(join_vertex, path index)` table and one assembly buffer, both reused across joins.
#[derive(Debug, Default, Clone)]
pub struct JoinScratch {
    /// `(end vertex, backward path index)` pairs, sorted by end vertex (ties by index).
    pub(crate) pairs: Vec<(VertexId, u32)>,
    /// Assembly buffer for one joined path.
    pub(crate) assembled: Vec<VertexId>,
}

/// Per-thread reusable buffers of the enumeration hot path.
///
/// Create one per worker (or per batch) and pass it to the `*_buffered` entry points of
/// [`crate::pathenum::PathEnum`], [`crate::basic_enum::BasicEnum`] and
/// [`crate::batch_enum::BatchEnum`]. The convenience (non-`_buffered`) entry points create
/// a transient instance per call, which preserves their old behaviour at the old cost.
#[derive(Debug, Default, Clone)]
pub struct SearchBuffers {
    /// Current DFS prefix (root first).
    pub(crate) stack: Vec<VertexId>,
    /// O(1) membership of the current prefix.
    pub(crate) marks: VisitMarks,
    /// Flat candidate arena shared by all open recursion levels.
    pub(crate) candidates: Vec<VertexId>,
    /// Reusable forward half-search prefix set.
    pub(crate) forward: PathSet,
    /// Reusable backward half-search prefix set.
    pub(crate) backward: PathSet,
    /// Reusable join scratch.
    pub(crate) join: JoinScratch,
}

impl SearchBuffers {
    /// Creates empty buffers; arrays grow lazily to the graphs they are used on.
    pub fn new() -> Self {
        SearchBuffers::default()
    }

    /// Creates buffers pre-sized for `graph` (avoids the first-use resize).
    pub fn for_graph(graph: &DiGraph) -> Self {
        let mut buffers = SearchBuffers::default();
        buffers.marks.reset(graph.num_vertices());
        buffers
    }

    /// Prepares the stack/marks/arena for a fresh traversal over `graph`.
    ///
    /// Returns with an empty stack, all marks cleared, and an empty candidate arena;
    /// allocations are retained.
    pub(crate) fn begin_traversal(&mut self, graph: &DiGraph) {
        self.stack.clear();
        self.candidates.clear();
        self.marks.reset(graph.num_vertices());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcsp_graph::generators::regular::grid;

    fn v(x: u32) -> VertexId {
        VertexId(x)
    }

    #[test]
    fn marks_track_membership_per_epoch() {
        let mut marks = VisitMarks::default();
        marks.reset(10);
        assert!(!marks.contains(v(3)));
        marks.mark(v(3));
        assert!(marks.contains(v(3)));
        marks.unmark(v(3));
        assert!(!marks.contains(v(3)));

        marks.mark(v(7));
        marks.reset(10);
        assert!(!marks.contains(v(7)), "reset clears all marks");
    }

    #[test]
    fn marks_grow_with_the_graph() {
        let mut marks = VisitMarks::default();
        marks.reset(2);
        marks.mark(v(1));
        marks.reset(100);
        marks.mark(v(99));
        assert!(marks.contains(v(99)));
        assert!(!marks.contains(v(1)));
    }

    #[test]
    fn epoch_wrap_wipes_stale_stamps() {
        let mut marks = VisitMarks {
            stamps: vec![u32::MAX - 1; 4],
            epoch: u32::MAX - 1,
        };
        // Stale stamps from the pre-wrap era must not leak into the post-wrap epoch.
        assert!(marks.contains(v(0)));
        marks.reset(4);
        assert!(!marks.contains(v(0)));
        marks.reset(4);
        assert!(!marks.contains(v(0)));
        marks.mark(v(2));
        assert!(marks.contains(v(2)));
    }

    #[test]
    fn begin_traversal_clears_state_but_keeps_capacity() {
        let g = grid(3, 3);
        let mut buffers = SearchBuffers::for_graph(&g);
        buffers.stack.push(v(0));
        buffers.candidates.extend([v(1), v(2)]);
        buffers.marks.mark(v(0));
        let stack_cap = buffers.stack.capacity();
        buffers.begin_traversal(&g);
        assert!(buffers.stack.is_empty());
        assert!(buffers.candidates.is_empty());
        assert!(!buffers.marks.contains(v(0)));
        assert!(buffers.stack.capacity() >= stack_cap);
    }
}
