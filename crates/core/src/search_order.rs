//! Neighbour expansion order.
//!
//! `BasicEnum+` and `BatchEnum+` are "the same algorithms with an optimized search order
//! introduced by PathEnum" (§V "Algorithms"). The plain variants expand out-neighbours in
//! CSR (vertex-id) order; the optimized variants expand neighbours closest to the query
//! anchor first (ties broken towards low-degree vertices), which finds failing branches
//! earlier and improves memory locality of the index lookups. The produced *path set* is
//! identical for both orders — only the traversal order, and therefore the running time,
//! differs.

use hcsp_graph::{DiGraph, Direction, VertexId};
use hcsp_index::BatchIndex;
use serde::{Deserialize, Serialize};

/// Which order neighbours are expanded in during the half searches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SearchOrder {
    /// CSR (increasing vertex id) order — `PathEnum` / `BasicEnum` / `BatchEnum`.
    #[default]
    VertexId,
    /// Distance-to-anchor order, ties broken by increasing degree —
    /// `BasicEnum+` / `BatchEnum+`.
    DistanceThenDegree,
}

impl SearchOrder {
    /// Orders `candidates` in place according to this policy.
    ///
    /// `anchor` is the vertex the search is heading towards (the query target for a
    /// forward search, the source for a backward search); `dir` is the search direction.
    pub fn arrange(
        self,
        candidates: &mut [VertexId],
        graph: &DiGraph,
        index: &BatchIndex,
        anchor: VertexId,
        dir: Direction,
    ) {
        match self {
            SearchOrder::VertexId => {
                // CSR neighbour lists are already sorted by id; nothing to do.
            }
            SearchOrder::DistanceThenDegree => {
                // Unstable sort: this runs once per expanded vertex in the enumeration
                // hot path, and a stable sort would allocate its merge buffer every call
                // (defeating the buffer-reuse design of `SearchBuffers`). Safe because
                // the key ends in `w.raw()`, a total order over the candidates — equal
                // keys cannot occur, so stability is irrelevant to the output.
                candidates.sort_unstable_by_key(|&w| {
                    (
                        index.dist_towards(dir, w, anchor),
                        graph.degree(w, dir) as u32,
                        w.raw(),
                    )
                });
            }
        }
    }

    /// Human-readable suffix used by experiment output ("" or "+").
    pub fn suffix(self) -> &'static str {
        match self {
            SearchOrder::VertexId => "",
            SearchOrder::DistanceThenDegree => "+",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcsp_graph::generators::regular::grid;

    #[test]
    fn vertex_id_order_is_noop() {
        let g = grid(3, 3);
        let index = BatchIndex::build(&g, &[VertexId(0)], &[VertexId(8)], 6);
        let mut c = vec![VertexId(1), VertexId(3)];
        SearchOrder::VertexId.arrange(&mut c, &g, &index, VertexId(8), Direction::Forward);
        assert_eq!(c, vec![VertexId(1), VertexId(3)]);
    }

    #[test]
    fn optimized_order_prefers_vertices_closer_to_anchor() {
        // Grid 3x3: vertex 8 is the bottom-right corner. From vertex 0 the neighbours are
        // 1 (dist to 8 = 3) and 3 (dist to 8 = 3); extend candidate list with vertex 5
        // (dist 1) and 7 (dist 1, same degree class) to exercise ordering.
        let g = grid(3, 3);
        let index = BatchIndex::build(&g, &[VertexId(0)], &[VertexId(8)], 6);
        let mut c = vec![VertexId(1), VertexId(5), VertexId(3), VertexId(7)];
        SearchOrder::DistanceThenDegree.arrange(
            &mut c,
            &g,
            &index,
            VertexId(8),
            Direction::Forward,
        );
        let dist: Vec<u32> = c
            .iter()
            .map(|&w| index.dist_to_target(w, VertexId(8)))
            .collect();
        assert!(
            dist.windows(2).all(|w| w[0] <= w[1]),
            "distances not ascending: {dist:?}"
        );
    }

    #[test]
    fn unreachable_vertices_sort_last() {
        let g = grid(3, 3);
        // Vertex 0 is unreachable *towards* (nothing reaches 0 except itself in this DAG
        // when anchoring at 0 with forward direction distances computed towards 8).
        let index = BatchIndex::build(&g, &[VertexId(0)], &[VertexId(8)], 6);
        let mut c = vec![VertexId(8), VertexId(0)];
        // dist(8 -> 8) = 0, dist(0 -> 8) = 4, so 8 first.
        SearchOrder::DistanceThenDegree.arrange(
            &mut c,
            &g,
            &index,
            VertexId(8),
            Direction::Forward,
        );
        assert_eq!(c[0], VertexId(8));
    }

    #[test]
    fn unstable_sort_produces_the_stable_sort_order() {
        // The arrangement key ends in the vertex id, so it is a total order and the
        // unstable sort must produce exactly what a stable sort would — including among
        // vertices tied on (distance, degree). A grid gives plenty of such ties.
        let g = grid(4, 4);
        let anchor = VertexId(15);
        let index = BatchIndex::build(&g, &[VertexId(0)], &[anchor], 8);
        // Every vertex, duplicated and reversed: ties and equal elements abound.
        let mut candidates: Vec<VertexId> = (0..16).rev().map(VertexId).collect();
        candidates.extend((0..16).map(VertexId));

        let mut stable = candidates.clone();
        stable.sort_by_key(|&w| {
            (
                index.dist_towards(Direction::Forward, w, anchor),
                g.degree(w, Direction::Forward) as u32,
                w.raw(),
            )
        });
        SearchOrder::DistanceThenDegree.arrange(
            &mut candidates,
            &g,
            &index,
            anchor,
            Direction::Forward,
        );
        assert_eq!(candidates, stable);
    }

    #[test]
    fn suffixes() {
        assert_eq!(SearchOrder::VertexId.suffix(), "");
        assert_eq!(SearchOrder::DistanceThenDegree.suffix(), "+");
        assert_eq!(SearchOrder::default(), SearchOrder::VertexId);
    }
}
