//! The index-pruned half search shared by every enumeration algorithm.
//!
//! `Search` in Algorithm 1 (and its shared-cache variant in Algorithm 4) enumerates every
//! simple prefix path starting at a root vertex, bounded by a hop budget, pruning each
//! candidate extension `v''` with Lemma 3.1: a prefix of `l` hops ending just before `v''`
//! is only worth extending when `l + 1 + dist(v'', anchor) ≤ k`, where the anchor is the
//! query target for a forward search and the query source for a backward search.

use crate::buffers::{LevelRun, SearchBuffers};
use crate::path::PathSet;
use crate::query::PathQuery;
use crate::search_order::SearchOrder;
use crate::sink::SinkFlow;
use crate::stats::SearchCounters;
use hcsp_graph::{DiGraph, Direction, VertexId};
use hcsp_index::{AnchorDistances, BatchIndex};
use serde::{Deserialize, Serialize};

/// How the half search walks the prefix tree.
///
/// Both modes visit exactly the same prefixes in exactly the same order with exactly the
/// same counter increments — they are byte-identical by contract (pinned by
/// `tests/prop_frontier.rs`). They differ only in mechanics and therefore speed:
///
/// * [`ExpansionMode::Recursive`] — the original one-vertex-at-a-time DFS; one call frame
///   per open level, per-edge anchor lookup through the index root table, per-expansion
///   sort-key derivation. Kept as the oracle the frontier engine is validated against.
/// * [`ExpansionMode::Frontier`] — iterative batch-DFS over flat level runs in the
///   candidate arena: the anchor's distance map is resolved once per traversal, a whole
///   adjacency segment is filtered in one contiguous pass (zipping the CSR neighbour
///   slice with its inline degree array), and the `DistanceThenDegree` sort key is taken
///   from that pass instead of re-derived per candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ExpansionMode {
    /// Recursive one-vertex-at-a-time DFS (the validation oracle).
    Recursive,
    /// Iterative frontier-at-a-time expansion over the flat candidate arena.
    #[default]
    Frontier,
}

impl ExpansionMode {
    /// Human-readable label used by experiment output.
    pub fn label(self) -> &'static str {
        match self {
            ExpansionMode::Recursive => "recursive",
            ExpansionMode::Frontier => "frontier",
        }
    }
}

/// Shared, immutable context of one half search.
pub struct SearchContext<'a> {
    /// The graph being traversed.
    pub graph: &'a DiGraph,
    /// The batch distance index used for pruning.
    pub index: &'a BatchIndex,
    /// Neighbour expansion order (plain vs "+" variants).
    pub order: SearchOrder,
    /// Prefix-tree walking mechanics (recursive oracle vs frontier engine).
    pub mode: ExpansionMode,
}

impl<'a> SearchContext<'a> {
    /// Creates a context with the default [`ExpansionMode`].
    pub fn new(graph: &'a DiGraph, index: &'a BatchIndex, order: SearchOrder) -> Self {
        SearchContext {
            graph,
            index,
            order,
            mode: ExpansionMode::default(),
        }
    }

    /// Selects the expansion mode (builder style).
    pub fn with_mode(mut self, mode: ExpansionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Enumerates every simple prefix of the half search of `query` in direction `dir`
    /// and stores it (all lengths `0..=budget`) into the returned [`PathSet`].
    ///
    /// Convenience wrapper around [`SearchContext::enumerate_half_into`] that pays for a
    /// transient [`SearchBuffers`] per call; batch runners reuse one buffer set instead.
    pub fn enumerate_half(
        &self,
        query: &PathQuery,
        dir: Direction,
        counters: &mut SearchCounters,
    ) -> PathSet {
        let mut buffers = SearchBuffers::new();
        let mut prefixes = PathSet::new();
        self.enumerate_half_into(query, dir, counters, &mut buffers, &mut prefixes);
        prefixes
    }

    /// Enumerates every simple prefix of the half search of `query` in direction `dir`
    /// into `prefixes` (cleared first), reusing the caller's [`SearchBuffers`].
    ///
    /// This is `Search(G, P_f, q.s, q.t, ⌈q.k/2⌉)` / `Search(G^r, P_b, q.t, q.s, ⌊q.k/2⌋)`
    /// of Algorithm 1, with the pruning test applied against the full hop constraint
    /// `q.k` exactly as in Example 3.1. The enumerated prefix set and its order are
    /// identical to [`SearchContext::enumerate_half`]; only the allocation behaviour
    /// differs (prefix stack, visited marks and candidate arena are reused).
    pub fn enumerate_half_into(
        &self,
        query: &PathQuery,
        dir: Direction,
        counters: &mut SearchCounters,
        buffers: &mut SearchBuffers,
        prefixes: &mut PathSet,
    ) {
        prefixes.clear();
        // `stored_prefixes` counts *materialised* prefixes, so it is accounted here —
        // at the push — not inside the DFS: the streaming strategy visits prefixes
        // without ever storing them and must not report storage work it skipped.
        let mut stored = 0u64;
        self.enumerate_half_with(query, dir, counters, buffers, |prefix| {
            stored += 1;
            prefixes.push_slice(prefix);
            SinkFlow::Continue
        });
        counters.stored_prefixes += stored;
    }

    /// Streaming form of the half search: `visit` is called once per simple prefix, in
    /// exactly the order [`SearchContext::enumerate_half_into`] stores them, and its
    /// [`SinkFlow`] verdict can abort the DFS mid-flight (the early-termination hook of
    /// the `Exists` / `FirstK` result modes: the prefix set is never materialised, and
    /// the search stops the instant the downstream sink is satisfied).
    ///
    /// Returns the verdict that aborted the search, or `Continue` when it was exhausted.
    /// Counters count the visited portion only, so early-terminated runs report their
    /// genuinely smaller search effort.
    pub fn enumerate_half_with<F>(
        &self,
        query: &PathQuery,
        dir: Direction,
        counters: &mut SearchCounters,
        buffers: &mut SearchBuffers,
        mut visit: F,
    ) -> SinkFlow
    where
        F: FnMut(&[VertexId]) -> SinkFlow,
    {
        let root = query.root(dir);
        let anchor = query.anchor(dir);
        let budget = query.budget(dir);
        let hop_limit = query.hop_limit;
        buffers.begin_traversal(self.graph);
        buffers.stack.push(root);
        buffers.marks.mark(root);
        match self.mode {
            ExpansionMode::Recursive => self.extend_prefix(
                buffers, dir, anchor, budget, hop_limit, &mut visit, counters,
            ),
            ExpansionMode::Frontier => self.extend_frontier(
                buffers, dir, anchor, budget, hop_limit, &mut visit, counters,
            ),
        }
    }

    /// Recursive prefix extension. `buffers.stack` holds the current prefix (root first),
    /// mirrored by `buffers.marks`; each open level occupies one range of the shared
    /// candidate arena. A non-`Continue` verdict from `visit` unwinds the recursion
    /// immediately (the arena is not repaired level by level on that path —
    /// [`SearchBuffers::begin_traversal`](crate::buffers::SearchBuffers) resets it before
    /// the next traversal).
    #[allow(clippy::too_many_arguments)]
    fn extend_prefix<F>(
        &self,
        buffers: &mut SearchBuffers,
        dir: Direction,
        anchor: VertexId,
        budget: u32,
        hop_limit: u32,
        visit: &mut F,
        counters: &mut SearchCounters,
    ) -> SinkFlow
    where
        F: FnMut(&[VertexId]) -> SinkFlow,
    {
        counters.expanded_vertices += 1;
        let flow = visit(&buffers.stack);
        if !flow.is_continue() {
            return flow;
        }

        let current_hops = (buffers.stack.len() - 1) as u32;
        if current_hops >= budget {
            return SinkFlow::Continue;
        }
        // lint:allow(panic-free-hot-path) the stack always holds at least the traversal root
        let last = *buffers.stack.last().expect("prefix is never empty");
        let level_start = buffers.candidates.len();
        // CSR neighbour slices are consumed directly; surviving candidates land in this
        // level's arena range.
        for &w in self.graph.neighbors(last, dir) {
            counters.scanned_edges += 1;
            let new_len = current_hops + 1;
            let remaining = self.index.dist_towards(dir, w, anchor);
            // Lemma 3.1: the prefix must still be completable within the hop limit.
            if remaining == hcsp_index::INF || new_len.saturating_add(remaining) > hop_limit {
                counters.pruned_edges += 1;
                continue;
            }
            if buffers.marks.contains(w) {
                continue;
            }
            buffers.candidates.push(w);
        }
        self.order.arrange(
            // lint:allow(panic-free-hot-path) level_start was candidates.len() above; only pushes since
            &mut buffers.candidates[level_start..],
            self.graph,
            self.index,
            anchor,
            dir,
        );
        let level_end = buffers.candidates.len();
        for i in level_start..level_end {
            // Deeper levels only append past `level_end` and truncate back, so this
            // level's range stays valid across the recursion.
            // lint:allow(panic-free-hot-path) i < level_end <= candidates.len() per the invariant above
            let w = buffers.candidates[i];
            buffers.stack.push(w);
            buffers.marks.mark(w);
            let flow = self.extend_prefix(buffers, dir, anchor, budget, hop_limit, visit, counters);
            buffers.marks.unmark(w);
            buffers.stack.pop();
            if !flow.is_continue() {
                return flow;
            }
        }
        buffers.candidates.truncate(level_start);
        SinkFlow::Continue
    }

    /// Iterative frontier-at-a-time prefix extension: the explicit-stack form of
    /// [`SearchContext::extend_prefix`], byte-identical in visit order and counters.
    ///
    /// `buffers.levels` replaces the recursion stack: each [`LevelRun`] owns one
    /// contiguous candidate range of the arena, descending pushes a run, and exhausting
    /// one truncates the arena back and backtracks the prefix. The anchor's sparse
    /// distance map is resolved *once* here and probed directly inside the fill pass, so
    /// the per-edge cost is a map probe plus two sequential array reads (CSR targets +
    /// inline degrees) instead of a root binary search and an offset gather. A
    /// non-`Continue` verdict from `visit` returns immediately; like the recursive
    /// engine, the arena and level stack are left dirty and repaired by the next
    /// [`SearchBuffers::begin_traversal`](crate::buffers::SearchBuffers).
    #[allow(clippy::too_many_arguments)]
    fn extend_frontier<F>(
        &self,
        buffers: &mut SearchBuffers,
        dir: Direction,
        anchor: VertexId,
        budget: u32,
        hop_limit: u32,
        visit: &mut F,
        counters: &mut SearchCounters,
    ) -> SinkFlow
    where
        F: FnMut(&[VertexId]) -> SinkFlow,
    {
        let anchor_dist = self.index.anchor_view(dir, anchor);
        counters.expanded_vertices += 1;
        let flow = visit(&buffers.stack);
        if !flow.is_continue() {
            return flow;
        }
        if budget == 0 {
            return SinkFlow::Continue;
        }
        self.fill_level(buffers, dir, &anchor_dist, 0, hop_limit, counters);
        loop {
            let Some(top) = buffers.levels.last_mut() else {
                return SinkFlow::Continue;
            };
            if top.cursor < top.end {
                // Take the next candidate of the deepest open level and descend.
                // lint:allow(panic-free-hot-path) cursor < end <= candidates.len(): runs index the arena
                let w = buffers.candidates[top.cursor];
                top.cursor += 1;
                buffers.stack.push(w);
                buffers.marks.mark(w);
                counters.expanded_vertices += 1;
                let flow = visit(&buffers.stack);
                if !flow.is_continue() {
                    return flow;
                }
                let current_hops = (buffers.stack.len() - 1) as u32;
                if current_hops < budget {
                    self.fill_level(
                        buffers,
                        dir,
                        &anchor_dist,
                        current_hops,
                        hop_limit,
                        counters,
                    );
                } else {
                    // Budget leaf: backtrack in place without opening a level.
                    buffers.marks.unmark(w);
                    buffers.stack.pop();
                }
            } else {
                // Run exhausted: reclaim its arena range and backtrack its owner. The
                // root owns the outermost level but stays on the stack — the traversal
                // is over once that level closes.
                // lint:allow(panic-free-hot-path) levels.last_mut() above proved the stack non-empty
                let run = buffers.levels.pop().expect("checked non-empty above");
                buffers.candidates.truncate(run.start);
                buffers.cand_keys.truncate(run.start);
                if !buffers.levels.is_empty() {
                    // lint:allow(panic-free-hot-path) a non-root level implies its owner is on the stack
                    let owner = *buffers.stack.last().expect("prefix is never empty");
                    buffers.marks.unmark(owner);
                    buffers.stack.pop();
                }
            }
        }
    }

    /// Fills one frontier level: filters the adjacency segment of the prefix tail in a
    /// single contiguous pass and pushes the surviving run onto `buffers.levels`.
    ///
    /// The CSR neighbour slice and its parallel inline-degree slice are consumed as one
    /// zipped sequential stream; the `(remaining, degree)` pair of every survivor is
    /// recorded in `cand_keys` so the `DistanceThenDegree` arrangement sorts precomputed
    /// keys instead of re-deriving them per candidate. The `(dist, degree, vertex)`
    /// triple sort reproduces the recursive `SearchOrder::arrange` total order exactly.
    fn fill_level(
        &self,
        buffers: &mut SearchBuffers,
        dir: Direction,
        anchor_dist: &AnchorDistances<'_>,
        current_hops: u32,
        hop_limit: u32,
        counters: &mut SearchCounters,
    ) {
        // lint:allow(panic-free-hot-path) fill_level is only called with the root already pushed
        let last = *buffers.stack.last().expect("prefix is never empty");
        let start = buffers.candidates.len();
        let new_len = current_hops + 1;
        let neighbors = self.graph.neighbors(last, dir);
        let degrees = self.graph.neighbor_degrees(last, dir);
        for (&w, &deg) in neighbors.iter().zip(degrees) {
            counters.scanned_edges += 1;
            let remaining = anchor_dist.dist(w);
            // Lemma 3.1: the prefix must still be completable within the hop limit.
            if remaining == hcsp_index::INF || new_len.saturating_add(remaining) > hop_limit {
                counters.pruned_edges += 1;
                continue;
            }
            if buffers.marks.contains(w) {
                continue;
            }
            buffers.candidates.push(w);
            buffers.cand_keys.push((remaining, deg));
        }
        let end = buffers.candidates.len();
        if self.order == SearchOrder::DistanceThenDegree && end - start > 1 {
            buffers.sort_run_by_keys(start, end);
        }
        buffers.levels.push(LevelRun {
            start,
            cursor: start,
            end,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcsp_graph::generators::regular::{complete, grid, layered_dag, path};
    use hcsp_graph::DiGraph;

    fn v(x: u32) -> VertexId {
        VertexId(x)
    }

    fn index_for(graph: &DiGraph, q: &PathQuery) -> BatchIndex {
        BatchIndex::build(graph, &[q.source], &[q.target], q.hop_limit)
    }

    #[test]
    fn forward_half_enumerates_all_useful_prefixes() {
        // Path graph 0 -> 1 -> 2 -> 3 -> 4, query (0, 4, 4): forward budget 2.
        let g = path(5);
        let q = PathQuery::new(0u32, 4u32, 4);
        let index = index_for(&g, &q);
        let ctx = SearchContext::new(&g, &index, SearchOrder::VertexId);
        let mut counters = SearchCounters::default();
        let prefixes = ctx.enumerate_half(&q, Direction::Forward, &mut counters);
        let collected: Vec<Vec<VertexId>> = prefixes.iter().map(|p| p.to_vec()).collect();
        assert_eq!(
            collected,
            vec![vec![v(0)], vec![v(0), v(1)], vec![v(0), v(1), v(2)]]
        );
        assert_eq!(counters.stored_prefixes, 3);
    }

    #[test]
    fn backward_half_walks_the_reverse_graph() {
        let g = path(5);
        let q = PathQuery::new(0u32, 4u32, 4);
        let index = index_for(&g, &q);
        let ctx = SearchContext::new(&g, &index, SearchOrder::VertexId);
        let mut counters = SearchCounters::default();
        let prefixes = ctx.enumerate_half(&q, Direction::Backward, &mut counters);
        let collected: Vec<Vec<VertexId>> = prefixes.iter().map(|p| p.to_vec()).collect();
        assert_eq!(
            collected,
            vec![vec![v(4)], vec![v(4), v(3)], vec![v(4), v(3), v(2)]]
        );
    }

    #[test]
    fn pruning_skips_branches_that_cannot_reach_the_anchor() {
        // Grid 3x3, query from corner 0 to corner 8 with k = 4 (the Manhattan distance):
        // every explored prefix must stay on a shortest path.
        let g = grid(3, 3);
        let q = PathQuery::new(0u32, 8u32, 4);
        let index = index_for(&g, &q);
        let ctx = SearchContext::new(&g, &index, SearchOrder::VertexId);
        let mut counters = SearchCounters::default();
        let prefixes = ctx.enumerate_half(&q, Direction::Forward, &mut counters);
        for p in prefixes.iter() {
            let hops = (p.len() - 1) as u32;
            let end = *p.last().unwrap();
            assert!(
                hops + index.dist_to_target(end, v(8)) <= 4,
                "useless prefix {p:?}"
            );
        }
        assert!(
            counters.pruned_edges == 0,
            "every grid edge stays useful at k = exact distance"
        );
    }

    #[test]
    fn pruning_counts_hopeless_edges() {
        // Query with k strictly smaller than the distance: everything is pruned after the root.
        let g = path(6);
        let q = PathQuery::new(0u32, 5u32, 3);
        let index = index_for(&g, &q);
        let ctx = SearchContext::new(&g, &index, SearchOrder::VertexId);
        let mut counters = SearchCounters::default();
        let prefixes = ctx.enumerate_half(&q, Direction::Forward, &mut counters);
        assert_eq!(prefixes.len(), 1, "only the root prefix survives");
        assert_eq!(counters.pruned_edges, 1);
    }

    #[test]
    fn simple_prefix_constraint_avoids_revisits() {
        // Complete graph: prefixes may never repeat a vertex.
        let g = complete(5);
        let q = PathQuery::new(0u32, 1u32, 4);
        let index = index_for(&g, &q);
        let ctx = SearchContext::new(&g, &index, SearchOrder::VertexId);
        let mut counters = SearchCounters::default();
        let prefixes = ctx.enumerate_half(&q, Direction::Forward, &mut counters);
        for p in prefixes.iter() {
            assert!(crate::path::vertices_are_distinct(p));
        }
    }

    #[test]
    fn both_orders_enumerate_the_same_prefix_set() {
        let g = layered_dag(3, 3);
        let sink_vertex = VertexId::new(g.num_vertices() - 1);
        let q = PathQuery::new(0u32, sink_vertex.raw(), 5);
        let index = index_for(&g, &q);
        let mut c1 = SearchCounters::default();
        let mut c2 = SearchCounters::default();
        let plain = SearchContext::new(&g, &index, SearchOrder::VertexId).enumerate_half(
            &q,
            Direction::Forward,
            &mut c1,
        );
        let optimized = SearchContext::new(&g, &index, SearchOrder::DistanceThenDegree)
            .enumerate_half(&q, Direction::Forward, &mut c2);
        let mut a: Vec<Vec<VertexId>> = plain.iter().map(|p| p.to_vec()).collect();
        let mut b: Vec<Vec<VertexId>> = optimized.iter().map(|p| p.to_vec()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_eq!(c1.stored_prefixes, c2.stored_prefixes);
    }

    #[test]
    fn buffered_half_search_matches_the_transient_one_across_reuses() {
        let g = grid(4, 4);
        let queries = [
            PathQuery::new(0u32, 15u32, 6),
            PathQuery::new(1u32, 14u32, 5),
            PathQuery::new(0u32, 15u32, 8),
        ];
        let mut buffers = crate::buffers::SearchBuffers::for_graph(&g);
        let mut reused = PathSet::new();
        for q in &queries {
            let index = index_for(&g, q);
            let ctx = SearchContext::new(&g, &index, SearchOrder::DistanceThenDegree);
            for dir in [Direction::Forward, Direction::Backward] {
                let mut c1 = SearchCounters::default();
                let mut c2 = SearchCounters::default();
                let transient = ctx.enumerate_half(q, dir, &mut c1);
                // Same buffers reused across queries and directions: identical output.
                ctx.enumerate_half_into(q, dir, &mut c2, &mut buffers, &mut reused);
                assert_eq!(reused, transient, "query {q} dir {dir:?}");
                assert_eq!(c1, c2);
            }
        }
    }

    #[test]
    fn streaming_half_search_aborts_and_leaves_buffers_reusable() {
        let g = complete(5);
        let q = PathQuery::new(0u32, 1u32, 4);
        let index = index_for(&g, &q);
        let ctx = SearchContext::new(&g, &index, SearchOrder::VertexId);
        let mut c_full = SearchCounters::default();
        let full = ctx.enumerate_half(&q, Direction::Forward, &mut c_full);
        assert!(full.len() > 3);

        // Abort after 3 visited prefixes: they match the full run's first 3, in order.
        let mut buffers = crate::buffers::SearchBuffers::for_graph(&g);
        let mut c_short = SearchCounters::default();
        let mut seen: Vec<Vec<VertexId>> = Vec::new();
        let flow =
            ctx.enumerate_half_with(&q, Direction::Forward, &mut c_short, &mut buffers, |p| {
                seen.push(p.to_vec());
                if seen.len() == 3 {
                    SinkFlow::SkipQuery
                } else {
                    SinkFlow::Continue
                }
            });
        assert_eq!(flow, SinkFlow::SkipQuery);
        let first_three: Vec<Vec<VertexId>> = full.iter().take(3).map(|p| p.to_vec()).collect();
        assert_eq!(seen, first_three);
        assert!(
            c_short.expanded_vertices < c_full.expanded_vertices,
            "an aborted search must report less work"
        );

        // The same buffers run a full traversal afterwards: identical output.
        let mut reused = PathSet::new();
        let mut c_again = SearchCounters::default();
        ctx.enumerate_half_into(
            &q,
            Direction::Forward,
            &mut c_again,
            &mut buffers,
            &mut reused,
        );
        assert_eq!(reused, full);
        assert_eq!(c_again, c_full);
    }

    #[test]
    fn zero_budget_query_yields_only_the_root() {
        let g = path(3);
        // k = 1: backward budget is 0.
        let q = PathQuery::new(0u32, 1u32, 1);
        let index = index_for(&g, &q);
        let ctx = SearchContext::new(&g, &index, SearchOrder::VertexId);
        let mut counters = SearchCounters::default();
        let prefixes = ctx.enumerate_half(&q, Direction::Backward, &mut counters);
        assert_eq!(prefixes.len(), 1);
        assert_eq!(prefixes.get(0), &[v(1)]);
    }

    #[test]
    fn frontier_matches_recursive_byte_for_byte() {
        // Same prefixes, same order, same counters — across graph shapes, hop limits,
        // both search orders and both directions.
        let cases: Vec<(DiGraph, PathQuery)> = vec![
            (grid(4, 4), PathQuery::new(0u32, 15u32, 8)),
            (complete(5), PathQuery::new(0u32, 1u32, 4)),
            (layered_dag(3, 3), PathQuery::new(0u32, 9u32, 5)),
            (path(6), PathQuery::new(0u32, 5u32, 5)),
            (path(3), PathQuery::new(0u32, 1u32, 1)), // zero backward budget
        ];
        for (g, q) in &cases {
            let index = index_for(g, q);
            for order in [SearchOrder::VertexId, SearchOrder::DistanceThenDegree] {
                for dir in [Direction::Forward, Direction::Backward] {
                    let mut c_rec = SearchCounters::default();
                    let mut c_fro = SearchCounters::default();
                    let recursive = SearchContext::new(g, &index, order)
                        .with_mode(ExpansionMode::Recursive)
                        .enumerate_half(q, dir, &mut c_rec);
                    let frontier = SearchContext::new(g, &index, order)
                        .with_mode(ExpansionMode::Frontier)
                        .enumerate_half(q, dir, &mut c_fro);
                    assert_eq!(frontier, recursive, "query {q} order {order:?} dir {dir:?}");
                    assert_eq!(c_fro, c_rec, "query {q} order {order:?} dir {dir:?}");
                }
            }
        }
    }

    #[test]
    fn frontier_abort_matches_recursive_abort() {
        // Aborting after N visited prefixes must observe the same prefixes, the same
        // verdict and the same (smaller) counters in both modes, at every N.
        let g = complete(5);
        let q = PathQuery::new(0u32, 1u32, 4);
        let index = index_for(&g, &q);
        let total = {
            let mut c = SearchCounters::default();
            SearchContext::new(&g, &index, SearchOrder::VertexId)
                .enumerate_half(&q, Direction::Forward, &mut c)
                .len()
        };
        for stop_after in 1..=total {
            let mut runs = Vec::new();
            for mode in [ExpansionMode::Recursive, ExpansionMode::Frontier] {
                let ctx = SearchContext::new(&g, &index, SearchOrder::VertexId).with_mode(mode);
                let mut buffers = crate::buffers::SearchBuffers::for_graph(&g);
                let mut counters = SearchCounters::default();
                let mut seen: Vec<Vec<VertexId>> = Vec::new();
                let flow = ctx.enumerate_half_with(
                    &q,
                    Direction::Forward,
                    &mut counters,
                    &mut buffers,
                    |p| {
                        seen.push(p.to_vec());
                        if seen.len() == stop_after {
                            SinkFlow::Stop
                        } else {
                            SinkFlow::Continue
                        }
                    },
                );
                assert_eq!(flow, SinkFlow::Stop);
                runs.push((seen, counters));
            }
            assert_eq!(runs[0], runs[1], "abort after {stop_after} prefixes");
        }
    }

    #[test]
    fn expansion_mode_labels_and_default() {
        assert_eq!(ExpansionMode::Recursive.label(), "recursive");
        assert_eq!(ExpansionMode::Frontier.label(), "frontier");
        assert_eq!(ExpansionMode::default(), ExpansionMode::Frontier);
    }
}
