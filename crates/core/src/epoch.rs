//! Versioned graph snapshots (epochs) for non-blocking reads over live updates.
//!
//! The serving layer used to rendezvous-barrier every worker on each update batch: all
//! workers stopped, one applied the mutation, everyone resumed on the new graph. That
//! couples read latency to writer cadence — the exact failure mode the paper's
//! *real-time* pitch cannot afford. Epochs decouple them:
//!
//! * an [`EpochPublisher`] owns the write path. Each [`EpochPublisher::publish`] call
//!   stages a [`GraphUpdate`] batch in a [`DeltaGraph`], compacts it into a fresh
//!   immutable CSR snapshot and publishes it as the next [`Epoch`] (a no-op batch
//!   republishes the current tip — no version bump, no window split downstream);
//! * readers pin the tip epoch at admission time and keep executing against that
//!   snapshot, barrier-free, even while later epochs are being built;
//! * each epoch carries the last few net edge deltas ([`MAX_EPOCH_DELTAS`] links), so a
//!   long-lived [`Engine`](crate::Engine) that lags a few epochs behind catches up
//!   incrementally ([`Engine::advance_to_epoch`](crate::Engine::advance_to_epoch)) —
//!   merging the missed deltas and maintaining its cached index exactly as one combined
//!   [`Engine::apply_updates`](crate::Engine::apply_updates) batch would, instead of
//!   rebuilding from scratch. An engine further behind than the retained window falls
//!   back to an index invalidation (counted, and still correct).
//!
//! Snapshots are plain `Arc`s: an epoch stays alive exactly as long as some pinned batch
//! still reads it, and dropping the last handle frees the superseded CSR.

use crate::engine::UpdateSummary;
use hcsp_graph::{DeltaGraph, DiGraph, GraphUpdate, VertexId};
use std::sync::Arc;

/// How many trailing net edge deltas each [`Epoch`] retains for incremental catch-up.
///
/// A reader at most this many epochs behind the tip advances by merging deltas; one
/// further behind invalidates its cached index instead. Small by design: the service
/// dispatches batches in admission order, so workers trail the tip by at most the few
/// windows that were in flight when an update landed.
pub const MAX_EPOCH_DELTAS: usize = 8;

/// The net edge mutations that produced epoch `id` from epoch `id - 1`.
#[derive(Debug)]
pub struct EpochDelta {
    id: u64,
    inserted: Vec<(VertexId, VertexId)>,
    deleted: Vec<(VertexId, VertexId)>,
}

/// An immutable, versioned snapshot of the served graph.
///
/// Epoch ids increase by exactly one per *effective* publish (no-op update batches do
/// not bump the id), so `tip.id() - engine.epoch_id()` is both "how far behind" and the
/// number of deltas a catch-up must merge.
#[derive(Debug, Clone)]
pub struct Epoch {
    graph: Arc<DiGraph>,
    id: u64,
    /// The last ≤ [`MAX_EPOCH_DELTAS`] deltas, oldest first, ending at `id`.
    deltas: Vec<Arc<EpochDelta>>,
}

impl Epoch {
    /// The epoch's version number (0 for the initial snapshot).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The snapshot graph.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// A clonable handle to the snapshot graph.
    pub fn graph_arc(&self) -> Arc<DiGraph> {
        Arc::clone(&self.graph)
    }

    /// The deltas a reader at `from_id` must merge to reach this epoch, oldest first —
    /// `None` when the reader is too far behind the retained window (or ahead).
    pub(crate) fn deltas_since(&self, from_id: u64) -> Option<&[Arc<EpochDelta>]> {
        let behind = self.id.checked_sub(from_id)?;
        let behind = usize::try_from(behind).ok()?;
        if behind > self.deltas.len() {
            return None;
        }
        let slice = &self.deltas[self.deltas.len() - behind..];
        debug_assert!(
            slice
                .iter()
                .zip(from_id + 1..)
                .all(|(delta, want)| delta.id == want),
            "epoch deltas must be consecutive versions ending at the epoch id"
        );
        Some(slice)
    }
}

/// A sorted list of directed edges, as produced by delta merging.
pub(crate) type EdgeList = Vec<(VertexId, VertexId)>;

/// Merges consecutive epoch deltas into one net `(inserted, deleted)` pair, cancelling
/// edges that were re-inserted or re-deleted across links. The result is exactly the
/// edge-set diff between the reader's snapshot and the target snapshot, so downstream
/// index maintenance composes as if one combined update batch had been applied.
pub(crate) fn merge_deltas(deltas: &[Arc<EpochDelta>]) -> (EdgeList, EdgeList) {
    let mut inserted = std::collections::BTreeSet::new();
    let mut deleted = std::collections::BTreeSet::new();
    for delta in deltas {
        for &e in &delta.inserted {
            if !deleted.remove(&e) {
                inserted.insert(e);
            }
        }
        for &e in &delta.deleted {
            if !inserted.remove(&e) {
                deleted.insert(e);
            }
        }
    }
    (
        inserted.into_iter().collect(),
        deleted.into_iter().collect(),
    )
}

/// Where acknowledged update batches are made durable *before* they become visible.
///
/// Implemented by the storage layer's write-ahead log (the service wires an
/// `UpdateStore` in as the sink). [`EpochPublisher::try_publish`] calls
/// [`DurabilitySink::append`] before building the new epoch, so the log is always a
/// superset of published state: a crash after the append replays the batch on recovery,
/// a crash before it means the batch was never acknowledged either. Sink errors abort
/// the publish — the tip is untouched and the caller must fail the update.
pub trait DurabilitySink: Send {
    /// Durably records one update batch (fsync cadence is the sink's policy).
    fn append(&mut self, updates: &[GraphUpdate]) -> std::io::Result<()>;
}

/// The single-writer publication side of the epoch protocol.
///
/// Owns the tip [`Epoch`] and turns [`GraphUpdate`] batches into new epochs. The
/// publisher itself is cheap state (an `Arc` and a version counter); callers serialise
/// writers externally (the service keeps it behind its admission lock, so updates
/// publish in admission order).
pub struct EpochPublisher {
    tip: Arc<Epoch>,
    sink: Option<Box<dyn DurabilitySink>>,
}

impl std::fmt::Debug for EpochPublisher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochPublisher")
            .field("tip", &self.tip)
            .field("durable", &self.sink.is_some())
            .finish()
    }
}

impl EpochPublisher {
    /// Starts the epoch sequence at version 0 over `graph`.
    pub fn new(graph: impl Into<Arc<DiGraph>>) -> Self {
        EpochPublisher {
            tip: Arc::new(Epoch {
                graph: graph.into(),
                id: 0,
                deltas: Vec::new(),
            }),
            sink: None,
        }
    }

    /// Attaches the durability sink every subsequent publish appends to first.
    pub fn set_sink(&mut self, sink: Box<dyn DurabilitySink>) {
        self.sink = Some(sink);
    }

    /// Whether a durability sink is attached.
    pub fn is_durable(&self) -> bool {
        self.sink.is_some()
    }

    /// The current tip epoch.
    pub fn tip(&self) -> Arc<Epoch> {
        Arc::clone(&self.tip)
    }

    /// Applies `updates` to the tip snapshot and publishes the result as the new tip.
    ///
    /// Infallible wrapper over [`EpochPublisher::try_publish`] for publishers without a
    /// durability sink (the only way the fallible variant can fail).
    ///
    /// # Panics
    ///
    /// Panics if an attached [`DurabilitySink`] rejects the append; durable callers
    /// must use [`EpochPublisher::try_publish`] and handle the error.
    pub fn publish(&mut self, updates: &[GraphUpdate]) -> (Arc<Epoch>, UpdateSummary) {
        self.try_publish(updates)
            .expect("durability sink failed; durable callers must use try_publish")
    }

    /// Applies `updates` to the tip snapshot and publishes the result as the new tip,
    /// appending the batch to the attached [`DurabilitySink`] first.
    ///
    /// Returns the (possibly unchanged) tip and the same [`UpdateSummary`] accounting as
    /// [`Engine::apply_updates`](crate::Engine::apply_updates). A batch that nets to
    /// nothing — empty, all no-ops, or internally cancelling — republishes the current
    /// tip without bumping the version, so readers never split a micro-batch window over
    /// an update that changed nothing. (Non-empty no-op batches are still logged: whether
    /// an update is a no-op depends on the state it replays over, and replay reapplies
    /// the exact acknowledged sequence.) On a sink error nothing is published and the
    /// tip is unchanged.
    pub fn try_publish(
        &mut self,
        updates: &[GraphUpdate],
    ) -> std::io::Result<(Arc<Epoch>, UpdateSummary)> {
        let mut summary = UpdateSummary::default();
        if updates.is_empty() {
            return Ok((self.tip(), summary));
        }
        if let Some(sink) = &mut self.sink {
            sink.append(updates)?;
        }
        let mut delta = DeltaGraph::new(self.tip.graph_arc());
        for update in updates {
            if delta.apply(update) {
                summary.applied += 1;
            } else {
                summary.ignored += 1;
            }
        }
        let inserted: Vec<_> = delta.added_edges().collect();
        let deleted: Vec<_> = delta.removed_edges().collect();
        summary.net_inserted = inserted.len();
        summary.net_deleted = deleted.len();
        summary.new_vertices = delta.num_vertices() - self.tip.graph.num_vertices();
        if !delta.is_dirty() {
            return Ok((self.tip(), summary));
        }
        let link = Arc::new(EpochDelta {
            id: self.tip.id + 1,
            inserted,
            deleted,
        });
        let mut deltas = self.tip.deltas.clone();
        deltas.push(link);
        if deltas.len() > MAX_EPOCH_DELTAS {
            deltas.drain(..deltas.len() - MAX_EPOCH_DELTAS);
        }
        self.tip = Arc::new(Epoch {
            graph: Arc::new(delta.compact()),
            id: self.tip.id + 1,
            deltas,
        });
        Ok((self.tip(), summary))
    }
}

/// What one [`Engine::advance_to_epoch`](crate::Engine::advance_to_epoch) call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochAdvance {
    /// How many epochs the engine crossed (0 when already at the target).
    pub epochs_crossed: u64,
    /// Net edges inserted across the merged deltas.
    pub net_inserted: usize,
    /// Net edges deleted across the merged deltas.
    pub net_deleted: usize,
    /// Index roots marked dirty by the precise delete pass (re-BFS'd lazily).
    pub dirty_roots: usize,
    /// Roots hit by a deleted shortest-path edge whose re-BFS the survivor scan skipped.
    pub supported_deletes: usize,
    /// Whether the cached index was dropped (too far behind, or over the refresh cap).
    pub invalidated: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcsp_graph::generators::regular::path;

    fn v(x: u32) -> VertexId {
        VertexId(x)
    }

    #[test]
    fn publish_bumps_the_version_only_on_effective_change() {
        let mut publisher = EpochPublisher::new(path(4));
        assert_eq!(publisher.tip().id(), 0);

        let (tip, summary) = publisher.publish(&[GraphUpdate::insert(0u32, 2u32)]);
        assert_eq!(tip.id(), 1);
        assert_eq!(summary.applied, 1);
        assert!(tip.graph().has_edge(v(0), v(2)));

        // No-ops and empty batches keep the tip.
        let (same, summary) = publisher.publish(&[GraphUpdate::insert(0u32, 2u32)]);
        assert_eq!(same.id(), 1);
        assert_eq!(summary.ignored, 1);
        let (same, _) = publisher.publish(&[]);
        assert_eq!(same.id(), 1);

        // An internally cancelling batch nets to nothing.
        let (same, summary) = publisher.publish(&[
            GraphUpdate::insert(1u32, 3u32),
            GraphUpdate::delete(1u32, 3u32),
        ]);
        assert_eq!(same.id(), 1);
        assert_eq!(summary.applied, 2);
        assert_eq!(summary.net_changes(), 0);
    }

    #[test]
    fn pinned_epochs_are_immutable_snapshots() {
        let mut publisher = EpochPublisher::new(path(3));
        let pinned = publisher.tip();
        publisher.publish(&[GraphUpdate::delete(0u32, 1u32)]);
        assert!(
            pinned.graph().has_edge(v(0), v(1)),
            "pinned snapshot unchanged"
        );
        assert!(!publisher.tip().graph().has_edge(v(0), v(1)));
    }

    #[test]
    fn deltas_since_covers_the_retained_window_exactly() {
        let mut publisher = EpochPublisher::new(path(2));
        for i in 0..(MAX_EPOCH_DELTAS as u32 + 3) {
            publisher.publish(&[GraphUpdate::insert(0u32, i + 2)]);
        }
        let tip = publisher.tip();
        assert_eq!(tip.id(), MAX_EPOCH_DELTAS as u64 + 3);
        assert_eq!(tip.deltas_since(tip.id()).unwrap().len(), 0);
        assert_eq!(tip.deltas_since(tip.id() - 2).unwrap().len(), 2);
        let full = tip
            .deltas_since(tip.id() - MAX_EPOCH_DELTAS as u64)
            .unwrap();
        assert_eq!(full.len(), MAX_EPOCH_DELTAS);
        assert!(
            full.windows(2).all(|w| w[1].id == w[0].id + 1),
            "retained deltas stay consecutive"
        );
        // Beyond the window (or from the future) there is no incremental route.
        assert!(tip
            .deltas_since(tip.id() - MAX_EPOCH_DELTAS as u64 - 1)
            .is_none());
        assert!(tip.deltas_since(tip.id() + 1).is_none());
    }

    #[test]
    fn advance_to_epoch_matches_a_fresh_engine_and_reuses_the_index() {
        use crate::{BatchEngine, Engine, PathQuery};
        use hcsp_graph::generators::regular::grid;

        let mut publisher = EpochPublisher::new(grid(4, 4));
        let mut engine = Engine::at_epoch(&publisher.tip(), BatchEngine::default());
        assert_eq!(engine.epoch_id(), 0);
        let queries = vec![
            PathQuery::new(0u32, 15u32, 6),
            PathQuery::new(5u32, 15u32, 5),
        ];
        engine.run(&queries);
        assert_eq!(engine.index_reuse().rebuilds, 1);

        // Two epochs land while the engine keeps its pinned snapshot.
        publisher.publish(&[
            GraphUpdate::insert(0u32, 10u32),
            GraphUpdate::delete(5u32, 6u32),
        ]);
        publisher.publish(&[GraphUpdate::delete(0u32, 1u32)]);
        let tip = publisher.tip();

        let advance = engine.advance_to_epoch(&tip);
        assert_eq!(advance.epochs_crossed, 2);
        assert_eq!(advance.net_inserted, 1);
        assert_eq!(advance.net_deleted, 2);
        assert!(!advance.invalidated);
        assert_eq!(engine.epoch_id(), tip.id());
        assert_eq!(engine.index_reuse().epoch_advances, 1);
        assert_eq!(engine.index_reuse().update_refreshes, 1);
        assert_eq!(
            engine.index_reuse().rebuilds,
            1,
            "the cached index survived"
        );

        let outcome = engine.run(&queries);
        let expected = Engine::at_epoch(&tip, BatchEngine::default()).run(&queries);
        assert_eq!(outcome.paths, expected.paths);

        // Advancing again to the same tip is free.
        assert_eq!(engine.advance_to_epoch(&tip), EpochAdvance::default());
    }

    #[test]
    fn advancing_past_the_delta_window_invalidates_but_stays_correct() {
        use crate::{BatchEngine, Engine, PathQuery};
        use hcsp_graph::generators::regular::grid;

        let mut publisher = EpochPublisher::new(grid(3, 3));
        let mut engine = Engine::at_epoch(&publisher.tip(), BatchEngine::default());
        let queries = vec![PathQuery::new(0u32, 8u32, 5)];
        engine.run(&queries);

        for i in 0..(MAX_EPOCH_DELTAS as u32 + 2) {
            publisher.publish(&[GraphUpdate::insert(0u32, 9 + i)]);
        }
        let tip = publisher.tip();
        let advance = engine.advance_to_epoch(&tip);
        assert!(
            advance.invalidated,
            "beyond the window there is no delta route"
        );
        assert_eq!(engine.index_reuse().invalidations, 1);

        let outcome = engine.run(&queries);
        let expected = Engine::at_epoch(&tip, BatchEngine::default()).run(&queries);
        assert_eq!(outcome.paths, expected.paths);
        assert_eq!(engine.index_reuse().rebuilds, 2, "the next batch rebuilt");
    }

    #[test]
    fn the_sink_sees_every_batch_before_it_publishes_and_can_veto() {
        use std::sync::Mutex;

        #[derive(Default)]
        struct Recorder {
            log: Arc<Mutex<Vec<Vec<GraphUpdate>>>>,
            fail: Arc<std::sync::atomic::AtomicBool>,
        }
        impl DurabilitySink for Recorder {
            fn append(&mut self, updates: &[GraphUpdate]) -> std::io::Result<()> {
                if self.fail.load(std::sync::atomic::Ordering::SeqCst) {
                    return Err(std::io::Error::other("disk gone"));
                }
                self.log.lock().unwrap().push(updates.to_vec());
                Ok(())
            }
        }

        let recorder = Recorder::default();
        let log = Arc::clone(&recorder.log);
        let fail = Arc::clone(&recorder.fail);
        let mut publisher = EpochPublisher::new(path(4));
        assert!(!publisher.is_durable());
        publisher.set_sink(Box::new(recorder));
        assert!(publisher.is_durable());

        // Effective, no-op, and cancelling batches are all logged; the empty batch is not
        // (nothing was acknowledged).
        publisher
            .try_publish(&[GraphUpdate::insert(0u32, 2u32)])
            .unwrap();
        publisher
            .try_publish(&[GraphUpdate::insert(0u32, 2u32)])
            .unwrap();
        publisher.try_publish(&[]).unwrap();
        assert_eq!(log.lock().unwrap().len(), 2);
        assert_eq!(publisher.tip().id(), 1);

        // A sink failure aborts the publish: tip untouched, nothing logged.
        fail.store(true, std::sync::atomic::Ordering::SeqCst);
        let err = publisher.try_publish(&[GraphUpdate::delete(0u32, 1u32)]);
        assert!(err.is_err());
        assert_eq!(publisher.tip().id(), 1);
        assert!(publisher.tip().graph().has_edge(v(0), v(1)));
        assert_eq!(log.lock().unwrap().len(), 2);
    }

    #[test]
    fn merged_deltas_cancel_across_links() {
        let mut publisher = EpochPublisher::new(path(4));
        let base = publisher.tip();
        publisher.publish(&[GraphUpdate::insert(0u32, 2u32)]);
        publisher.publish(&[
            GraphUpdate::delete(0u32, 2u32),
            GraphUpdate::delete(1u32, 2u32),
        ]);
        publisher.publish(&[GraphUpdate::insert(3u32, 0u32)]);
        let tip = publisher.tip();
        let (inserted, deleted) = merge_deltas(tip.deltas_since(base.id()).unwrap());
        assert_eq!(inserted, vec![(v(3), v(0))]);
        assert_eq!(deleted, vec![(v(1), v(2))]);
    }
}
