//! Reference enumerator used only for correctness testing and tiny examples.
//!
//! A plain depth-first backtracking enumeration with no index and no pruning beyond the
//! hop bound and the simple-path constraint. Exponentially slower than the real
//! algorithms, but its output is trivially correct, which makes it the oracle for the
//! integration and property tests ("all algorithms return exactly the brute-force set").

use crate::path::Path;
use crate::query::PathQuery;
use hcsp_graph::{DiGraph, Direction, VertexId};

/// Enumerates every simple path from `query.source` to `query.target` with at most
/// `query.hop_limit` hops by naive backtracking DFS.
pub fn enumerate_reference(graph: &DiGraph, query: &PathQuery) -> Vec<Path> {
    let mut results = Vec::new();
    if query.source.index() >= graph.num_vertices() || query.target.index() >= graph.num_vertices()
    {
        return results;
    }
    let mut stack = vec![query.source];
    dfs(graph, query, &mut stack, &mut results);
    results
}

fn dfs(graph: &DiGraph, query: &PathQuery, stack: &mut Vec<VertexId>, results: &mut Vec<Path>) {
    let last = *stack.last().expect("stack never empty");
    if last == query.target {
        results.push(Path::new(stack.clone()));
        // A simple path may not revisit the target, so stop extending here.
        return;
    }
    if (stack.len() - 1) as u32 >= query.hop_limit {
        return;
    }
    for &w in graph.neighbors(last, Direction::Forward) {
        if stack.contains(&w) {
            continue;
        }
        stack.push(w);
        dfs(graph, query, stack, results);
        stack.pop();
    }
}

/// Sorted canonical form of a path list, convenient for set equality assertions in tests.
pub fn canonical(mut paths: Vec<Path>) -> Vec<Path> {
    paths.sort();
    paths.dedup();
    paths
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcsp_graph::generators::regular::{complete, cycle, layered_dag};

    fn count(graph: &DiGraph, s: u32, t: u32, k: u32) -> usize {
        enumerate_reference(graph, &PathQuery::new(s, t, k)).len()
    }

    #[test]
    fn layered_dag_has_width_pow_layers_paths() {
        let g = layered_dag(3, 2);
        let sink = (g.num_vertices() - 1) as u32;
        assert_eq!(count(&g, 0, sink, 4), 8);
        assert_eq!(count(&g, 0, sink, 3), 0, "paths need 4 hops");
        assert_eq!(
            count(&g, 0, sink, 10),
            8,
            "larger k admits no extra simple paths"
        );
    }

    #[test]
    fn cycle_has_exactly_one_path_per_direction() {
        let g = cycle(5);
        assert_eq!(count(&g, 0, 3, 5), 1);
        assert_eq!(count(&g, 0, 3, 2), 0);
    }

    #[test]
    fn complete_graph_path_counts_match_closed_form() {
        // In K4, simple paths from s to t of length exactly l pass through l-1 of the 2
        // remaining vertices in order: counts are 1 (l=1), 2 (l=2), 2 (l=3).
        let g = complete(4);
        assert_eq!(count(&g, 0, 3, 1), 1);
        assert_eq!(count(&g, 0, 3, 2), 3);
        assert_eq!(count(&g, 0, 3, 3), 5);
    }

    #[test]
    fn source_equals_target_returns_trivial_path() {
        let g = complete(3);
        let paths = enumerate_reference(&g, &PathQuery::new(1u32, 1u32, 4));
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].hops(), 0);
    }

    #[test]
    fn out_of_range_endpoints_return_empty() {
        let g = complete(3);
        assert_eq!(count(&g, 0, 9, 3), 0);
        assert_eq!(count(&g, 9, 0, 3), 0);
    }

    #[test]
    fn every_result_is_simple_and_within_bound() {
        let g = complete(5);
        let q = PathQuery::new(0u32, 4u32, 3);
        for p in enumerate_reference(&g, &q) {
            assert!(p.is_simple());
            assert!(p.hops() as u32 <= q.hop_limit);
            assert_eq!(p.first(), q.source);
            assert_eq!(p.last(), q.target);
        }
    }

    #[test]
    fn canonical_sorts_and_dedups() {
        let a = Path::new(vec![VertexId(0), VertexId(1)]);
        let b = Path::new(vec![VertexId(0), VertexId(2)]);
        let out = canonical(vec![b.clone(), a.clone(), a.clone()]);
        assert_eq!(out, vec![a, b]);
    }
}
