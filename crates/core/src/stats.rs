//! Instrumentation: per-stage wall-clock timings and traversal counters.
//!
//! Exp-3 of the paper (Fig. 9) decomposes the total processing time of `BatchEnum+` into
//! `BuildIndex`, `ClusterQuery`, `IdentifySubquery` and `Enumeration`. Every run of every
//! algorithm in this workspace fills an [`EnumStats`] so that decomposition is a
//! by-product of normal execution rather than a special instrumented mode.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// The processing stages distinguished by the time-decomposition experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// Multi-source BFS index construction (Alg. 1 / Alg. 4, lines 1–2).
    BuildIndex,
    /// Hierarchical query clustering (Alg. 2).
    ClusterQuery,
    /// Common HC-s path query detection (Alg. 3), including building Ψ.
    IdentifySubquery,
    /// Path enumeration and concatenation (the remainder of Alg. 1 / Alg. 4).
    Enumeration,
}

impl Stage {
    /// All stages in report order.
    pub const ALL: [Stage; 4] = [
        Stage::BuildIndex,
        Stage::ClusterQuery,
        Stage::IdentifySubquery,
        Stage::Enumeration,
    ];
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Stage::BuildIndex => "BuildIndex",
            Stage::ClusterQuery => "ClusterQuery",
            Stage::IdentifySubquery => "IdentifySubquery",
            Stage::Enumeration => "Enumeration",
        };
        f.write_str(name)
    }
}

/// Low-level traversal counters accumulated during the half searches and joins.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchCounters {
    /// Vertices expanded (recursion entries) during the DFS half searches.
    pub expanded_vertices: u64,
    /// Edges examined while expanding.
    pub scanned_edges: u64,
    /// Edges skipped by the Lemma 3.1 distance pruning.
    pub pruned_edges: u64,
    /// Prefix paths materialised into `P_f` / `P_b` or into the shared cache.
    pub stored_prefixes: u64,
    /// Prefix splices served from the shared HC-s path cache (BatchEnum only).
    pub cache_splices: u64,
    /// Complete HC-s-t paths produced.
    pub produced_paths: u64,
}

impl SearchCounters {
    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &SearchCounters) {
        self.expanded_vertices += other.expanded_vertices;
        self.scanned_edges += other.scanned_edges;
        self.pruned_edges += other.pruned_edges;
        self.stored_prefixes += other.stored_prefixes;
        self.cache_splices += other.cache_splices;
        self.produced_paths += other.produced_paths;
    }
}

/// Complete statistics of one batch run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EnumStats {
    /// Wall-clock time per stage (absent stages were not executed by the algorithm).
    stage_times: Vec<(Stage, Duration)>,
    /// Traversal counters.
    pub counters: SearchCounters,
    /// Number of queries in the batch.
    pub num_queries: usize,
    /// Number of query clusters formed (1 per query when clustering is not used).
    pub num_clusters: usize,
    /// Number of common (dominating) HC-s path queries detected.
    pub num_shared_subqueries: usize,
    /// Peak number of HC-s path results resident in the cache at any point.
    pub peak_cached_results: usize,
    /// Effective shards the parallel scheduler planned (0 for sequential runs). A batch
    /// whose clusters all collapse into one steal unit reports 1 here regardless of the
    /// worker count — the signal the intra-cluster split policy exists to fix.
    #[serde(default)]
    pub num_shards: usize,
}

impl EnumStats {
    /// Creates empty statistics for a batch of `num_queries` queries.
    pub fn new(num_queries: usize) -> Self {
        EnumStats {
            num_queries,
            ..Default::default()
        }
    }

    /// Records (accumulates) time spent in a stage.
    pub fn add_stage(&mut self, stage: Stage, elapsed: Duration) {
        if let Some(entry) = self.stage_times.iter_mut().find(|(s, _)| *s == stage) {
            entry.1 += elapsed;
        } else {
            self.stage_times.push((stage, elapsed));
        }
    }

    /// Time spent in a stage (zero if the stage never ran).
    pub fn stage_time(&self, stage: Stage) -> Duration {
        self.stage_times
            .iter()
            .find(|(s, _)| *s == stage)
            .map(|(_, d)| *d)
            .unwrap_or_default()
    }

    /// Sum of all recorded stage times.
    pub fn total_time(&self) -> Duration {
        self.stage_times.iter().map(|(_, d)| *d).sum()
    }

    /// Formats the Fig. 9 style decomposition as `stage=seconds` pairs.
    pub fn decomposition_row(&self) -> String {
        Stage::ALL
            .iter()
            .map(|&s| format!("{}={:.6}s", s, self.stage_time(s).as_secs_f64()))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Fraction of queries that shared a cluster with at least one other query,
    /// `1 − |clusters| / |Q|` — the "sharing ratio" reported per micro-batch in service
    /// mode.
    ///
    /// `0.0` when every query formed its own cluster (no sharing: `PathEnum`, `BasicEnum`,
    /// or γ = 1) and approaching `1.0` when the whole batch collapsed into few clusters.
    /// Only meaningful for runs that counted clusters; an empty batch reports `0.0`.
    pub fn sharing_ratio(&self) -> f64 {
        if self.num_queries == 0 {
            return 0.0;
        }
        (1.0 - self.num_clusters as f64 / self.num_queries as f64).clamp(0.0, 1.0)
    }

    /// Merges the statistics of another run (used when an algorithm processes clusters or
    /// directions separately and the per-part stats are combined).
    pub fn merge(&mut self, other: &EnumStats) {
        for &(stage, d) in &other.stage_times {
            self.add_stage(stage, d);
        }
        self.counters.merge(&other.counters);
        self.num_clusters += other.num_clusters;
        self.num_shared_subqueries += other.num_shared_subqueries;
        self.peak_cached_results = self.peak_cached_results.max(other.peak_cached_results);
        self.num_shards = self.num_shards.max(other.num_shards);
    }
}

/// Service-mode instrumentation of one executed micro-batch.
///
/// A micro-batch is the set of queries one admission window of the serving layer closed
/// over (see the `hcsp-service` crate); these counters are what the service throughput
/// bench reports on top of the per-run [`EnumStats`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MicroBatchStats {
    /// Number of queries the admission window closed over.
    pub batch_size: usize,
    /// Longest time any query of the batch spent waiting in the admission queue.
    pub max_queue_wait: Duration,
    /// Sum of admission-queue waits over the batch's queries.
    pub total_queue_wait: Duration,
    /// Wall-clock execution time of the micro-batch (index preparation + run).
    pub exec_time: Duration,
    /// The underlying batch-run statistics.
    pub run: EnumStats,
}

impl MicroBatchStats {
    /// Mean admission-queue wait over the batch's queries.
    pub fn mean_queue_wait(&self) -> Duration {
        if self.batch_size == 0 {
            return Duration::ZERO;
        }
        self.total_queue_wait / self.batch_size as u32
    }

    /// The batch's sharing ratio, `1 − |clusters| / |Q|` (see [`EnumStats::sharing_ratio`]).
    pub fn sharing_ratio(&self) -> f64 {
        self.run.sharing_ratio()
    }
}

/// Aggregate statistics over every micro-batch a service session executed.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Number of micro-batches executed.
    pub num_batches: usize,
    /// Number of queries served.
    pub num_queries: usize,
    /// Largest micro-batch.
    pub max_batch_size: usize,
    /// Sum of admission-queue waits over all served queries.
    pub total_queue_wait: Duration,
    /// Longest admission-queue wait of any served query.
    pub max_queue_wait: Duration,
    /// Sum of micro-batch execution times (CPU-side service time, not wall-clock span).
    pub total_exec_time: Duration,
    /// Total clusters formed across micro-batches (for the aggregate sharing ratio).
    pub num_clusters: usize,
    /// Total HC-s-t paths delivered.
    pub produced_paths: u64,
    /// Graph-update batches published (each counted once, however many worker engines
    /// later advance to the resulting epoch).
    pub update_batches: usize,
    /// Update submissions (`PathService::update` calls) absorbed by those batches. The
    /// epoch-publishing service records one batch per call, so the two counters agree
    /// there; a recorder that merges submissions before applying may record fewer
    /// batches than calls.
    pub update_calls: usize,
    /// Individual edge mutations those batches applied (net of no-ops).
    pub updates_applied: usize,
    /// Epochs published by the update path (updates that actually changed the graph).
    pub epochs_published: usize,
    /// WAL fsyncs performed by the group-commit path of a durable service, each
    /// covering every update batch appended in its admission window. Under
    /// concurrent updates this stays below `update_batches` — the gap is fsyncs
    /// saved by sharing; zero for in-memory services and non-`Always` policies.
    pub group_commit_batches: u64,
    /// Micro-batches that executed against an epoch older than the tip at completion
    /// time — reads that proceeded, barrier-free, while a writer published behind them.
    pub batches_pinned_behind: usize,
    /// Delete-dirtied re-BFS runs the precise survivor scan avoided across all worker
    /// engines (see `IndexReuse::deletes_supported`).
    pub rebfs_avoided: usize,
}

impl ServiceStats {
    /// Folds one executed micro-batch into the aggregate.
    pub fn record(&mut self, batch: &MicroBatchStats) {
        self.num_batches += 1;
        self.num_queries += batch.batch_size;
        self.max_batch_size = self.max_batch_size.max(batch.batch_size);
        self.total_queue_wait += batch.total_queue_wait;
        self.max_queue_wait = self.max_queue_wait.max(batch.max_queue_wait);
        self.total_exec_time += batch.exec_time;
        self.num_clusters += batch.run.num_clusters;
        self.produced_paths += batch.run.counters.produced_paths;
    }

    /// Folds one applied graph-update batch into the aggregate; `calls` is the number of
    /// update submissions the batch absorbed (1 when each call publishes on its own).
    pub fn record_update(&mut self, summary: &crate::engine::UpdateSummary, calls: usize) {
        self.update_batches += 1;
        self.update_calls += calls;
        self.updates_applied += summary.applied;
    }

    /// Mean number of queries per micro-batch.
    pub fn mean_batch_size(&self) -> f64 {
        if self.num_batches == 0 {
            return 0.0;
        }
        self.num_queries as f64 / self.num_batches as f64
    }

    /// Mean admission-queue wait per served query.
    pub fn mean_queue_wait(&self) -> Duration {
        if self.num_queries == 0 {
            return Duration::ZERO;
        }
        self.total_queue_wait / self.num_queries as u32
    }

    /// Aggregate sharing ratio, `1 − total clusters / total queries`.
    pub fn sharing_ratio(&self) -> f64 {
        if self.num_queries == 0 {
            return 0.0;
        }
        (1.0 - self.num_clusters as f64 / self.num_queries as f64).clamp(0.0, 1.0)
    }

    /// Served queries per second over a measured wall-clock span.
    pub fn throughput_qps(&self, elapsed: Duration) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        self.num_queries as f64 / elapsed.as_secs_f64()
    }
}

/// Small helper measuring a closure's wall-clock time and attributing it to a stage.
pub fn timed<T>(stats: &mut EnumStats, stage: Stage, f: impl FnOnce() -> T) -> T {
    let start = std::time::Instant::now();
    let out = f();
    stats.add_stage(stage, start.elapsed());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_times_accumulate() {
        let mut s = EnumStats::new(10);
        s.add_stage(Stage::BuildIndex, Duration::from_millis(5));
        s.add_stage(Stage::BuildIndex, Duration::from_millis(7));
        s.add_stage(Stage::Enumeration, Duration::from_millis(100));
        assert_eq!(s.stage_time(Stage::BuildIndex), Duration::from_millis(12));
        assert_eq!(s.stage_time(Stage::ClusterQuery), Duration::ZERO);
        assert_eq!(s.total_time(), Duration::from_millis(112));
        assert_eq!(s.num_queries, 10);
    }

    #[test]
    fn merge_combines_counters_and_times() {
        let mut a = EnumStats::new(5);
        a.add_stage(Stage::Enumeration, Duration::from_millis(10));
        a.counters.produced_paths = 3;
        a.peak_cached_results = 2;

        let mut b = EnumStats::new(5);
        b.add_stage(Stage::Enumeration, Duration::from_millis(20));
        b.add_stage(Stage::ClusterQuery, Duration::from_millis(1));
        b.counters.produced_paths = 4;
        b.num_shared_subqueries = 6;
        b.peak_cached_results = 9;
        b.num_shards = 7;

        a.merge(&b);
        assert_eq!(a.stage_time(Stage::Enumeration), Duration::from_millis(30));
        assert_eq!(a.stage_time(Stage::ClusterQuery), Duration::from_millis(1));
        assert_eq!(a.counters.produced_paths, 7);
        assert_eq!(a.num_shared_subqueries, 6);
        assert_eq!(a.peak_cached_results, 9);
        assert_eq!(a.num_shards, 7, "effective shards merge via max");
    }

    #[test]
    fn timed_attributes_elapsed_time() {
        let mut s = EnumStats::new(1);
        let out = timed(&mut s, Stage::IdentifySubquery, || 21 * 2);
        assert_eq!(out, 42);
        assert!(s.stage_time(Stage::IdentifySubquery) >= Duration::ZERO);
        assert!(s.decomposition_row().contains("IdentifySubquery="));
    }

    #[test]
    fn counters_merge() {
        let mut a = SearchCounters {
            expanded_vertices: 1,
            scanned_edges: 2,
            ..Default::default()
        };
        let b = SearchCounters {
            expanded_vertices: 10,
            pruned_edges: 5,
            cache_splices: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.expanded_vertices, 11);
        assert_eq!(a.scanned_edges, 2);
        assert_eq!(a.pruned_edges, 5);
        assert_eq!(a.cache_splices, 1);
    }

    #[test]
    fn sharing_ratio_bounds() {
        let mut s = EnumStats::new(10);
        s.num_clusters = 10;
        assert_eq!(s.sharing_ratio(), 0.0);
        s.num_clusters = 2;
        assert!((s.sharing_ratio() - 0.8).abs() < 1e-12);
        assert_eq!(EnumStats::new(0).sharing_ratio(), 0.0);
    }

    #[test]
    fn micro_batch_stats_derive_means() {
        let mut run = EnumStats::new(4);
        run.num_clusters = 1;
        run.counters.produced_paths = 12;
        let batch = MicroBatchStats {
            batch_size: 4,
            max_queue_wait: Duration::from_millis(8),
            total_queue_wait: Duration::from_millis(20),
            exec_time: Duration::from_millis(3),
            run,
        };
        assert_eq!(batch.mean_queue_wait(), Duration::from_millis(5));
        assert!((batch.sharing_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(MicroBatchStats::default().mean_queue_wait(), Duration::ZERO);
    }

    #[test]
    fn service_stats_aggregate_micro_batches() {
        let mut service = ServiceStats::default();
        assert_eq!(service.mean_batch_size(), 0.0);
        assert_eq!(service.mean_queue_wait(), Duration::ZERO);
        assert_eq!(service.sharing_ratio(), 0.0);
        assert_eq!(service.throughput_qps(Duration::ZERO), 0.0);

        let mut run_a = EnumStats::new(3);
        run_a.num_clusters = 1;
        run_a.counters.produced_paths = 5;
        service.record(&MicroBatchStats {
            batch_size: 3,
            max_queue_wait: Duration::from_millis(4),
            total_queue_wait: Duration::from_millis(9),
            exec_time: Duration::from_millis(2),
            run: run_a,
        });
        let mut run_b = EnumStats::new(1);
        run_b.num_clusters = 1;
        run_b.counters.produced_paths = 2;
        service.record(&MicroBatchStats {
            batch_size: 1,
            max_queue_wait: Duration::from_millis(1),
            total_queue_wait: Duration::from_millis(1),
            exec_time: Duration::from_millis(1),
            run: run_b,
        });

        assert_eq!(service.num_batches, 2);
        assert_eq!(service.num_queries, 4);
        assert_eq!(service.max_batch_size, 3);
        assert_eq!(service.max_queue_wait, Duration::from_millis(4));
        assert_eq!(service.total_exec_time, Duration::from_millis(3));
        assert_eq!(service.produced_paths, 7);
        assert_eq!(service.mean_batch_size(), 2.0);
        assert_eq!(service.mean_queue_wait(), Duration::from_micros(2500));
        assert!((service.sharing_ratio() - 0.5).abs() < 1e-12);
        assert!((service.throughput_qps(Duration::from_secs(2)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stage_display_names() {
        let names: Vec<String> = Stage::ALL.iter().map(|s| s.to_string()).collect();
        assert_eq!(
            names,
            vec![
                "BuildIndex",
                "ClusterQuery",
                "IdentifySubquery",
                "Enumeration"
            ]
        );
    }
}
