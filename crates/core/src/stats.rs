//! Instrumentation: per-stage wall-clock timings and traversal counters.
//!
//! Exp-3 of the paper (Fig. 9) decomposes the total processing time of `BatchEnum+` into
//! `BuildIndex`, `ClusterQuery`, `IdentifySubquery` and `Enumeration`. Every run of every
//! algorithm in this workspace fills an [`EnumStats`] so that decomposition is a
//! by-product of normal execution rather than a special instrumented mode.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// The processing stages distinguished by the time-decomposition experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// Multi-source BFS index construction (Alg. 1 / Alg. 4, lines 1–2).
    BuildIndex,
    /// Hierarchical query clustering (Alg. 2).
    ClusterQuery,
    /// Common HC-s path query detection (Alg. 3), including building Ψ.
    IdentifySubquery,
    /// Path enumeration and concatenation (the remainder of Alg. 1 / Alg. 4).
    Enumeration,
}

impl Stage {
    /// All stages in report order.
    pub const ALL: [Stage; 4] = [
        Stage::BuildIndex,
        Stage::ClusterQuery,
        Stage::IdentifySubquery,
        Stage::Enumeration,
    ];
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Stage::BuildIndex => "BuildIndex",
            Stage::ClusterQuery => "ClusterQuery",
            Stage::IdentifySubquery => "IdentifySubquery",
            Stage::Enumeration => "Enumeration",
        };
        f.write_str(name)
    }
}

/// Low-level traversal counters accumulated during the half searches and joins.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchCounters {
    /// Vertices expanded (recursion entries) during the DFS half searches.
    pub expanded_vertices: u64,
    /// Edges examined while expanding.
    pub scanned_edges: u64,
    /// Edges skipped by the Lemma 3.1 distance pruning.
    pub pruned_edges: u64,
    /// Prefix paths materialised into `P_f` / `P_b` or into the shared cache.
    pub stored_prefixes: u64,
    /// Prefix splices served from the shared HC-s path cache (BatchEnum only).
    pub cache_splices: u64,
    /// Complete HC-s-t paths produced.
    pub produced_paths: u64,
}

impl SearchCounters {
    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &SearchCounters) {
        self.expanded_vertices += other.expanded_vertices;
        self.scanned_edges += other.scanned_edges;
        self.pruned_edges += other.pruned_edges;
        self.stored_prefixes += other.stored_prefixes;
        self.cache_splices += other.cache_splices;
        self.produced_paths += other.produced_paths;
    }
}

/// Complete statistics of one batch run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EnumStats {
    /// Wall-clock time per stage (absent stages were not executed by the algorithm).
    stage_times: Vec<(Stage, Duration)>,
    /// Traversal counters.
    pub counters: SearchCounters,
    /// Number of queries in the batch.
    pub num_queries: usize,
    /// Number of query clusters formed (1 per query when clustering is not used).
    pub num_clusters: usize,
    /// Number of common (dominating) HC-s path queries detected.
    pub num_shared_subqueries: usize,
    /// Peak number of HC-s path results resident in the cache at any point.
    pub peak_cached_results: usize,
}

impl EnumStats {
    /// Creates empty statistics for a batch of `num_queries` queries.
    pub fn new(num_queries: usize) -> Self {
        EnumStats {
            num_queries,
            ..Default::default()
        }
    }

    /// Records (accumulates) time spent in a stage.
    pub fn add_stage(&mut self, stage: Stage, elapsed: Duration) {
        if let Some(entry) = self.stage_times.iter_mut().find(|(s, _)| *s == stage) {
            entry.1 += elapsed;
        } else {
            self.stage_times.push((stage, elapsed));
        }
    }

    /// Time spent in a stage (zero if the stage never ran).
    pub fn stage_time(&self, stage: Stage) -> Duration {
        self.stage_times
            .iter()
            .find(|(s, _)| *s == stage)
            .map(|(_, d)| *d)
            .unwrap_or_default()
    }

    /// Sum of all recorded stage times.
    pub fn total_time(&self) -> Duration {
        self.stage_times.iter().map(|(_, d)| *d).sum()
    }

    /// Formats the Fig. 9 style decomposition as `stage=seconds` pairs.
    pub fn decomposition_row(&self) -> String {
        Stage::ALL
            .iter()
            .map(|&s| format!("{}={:.6}s", s, self.stage_time(s).as_secs_f64()))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Merges the statistics of another run (used when an algorithm processes clusters or
    /// directions separately and the per-part stats are combined).
    pub fn merge(&mut self, other: &EnumStats) {
        for &(stage, d) in &other.stage_times {
            self.add_stage(stage, d);
        }
        self.counters.merge(&other.counters);
        self.num_clusters += other.num_clusters;
        self.num_shared_subqueries += other.num_shared_subqueries;
        self.peak_cached_results = self.peak_cached_results.max(other.peak_cached_results);
    }
}

/// Small helper measuring a closure's wall-clock time and attributing it to a stage.
pub fn timed<T>(stats: &mut EnumStats, stage: Stage, f: impl FnOnce() -> T) -> T {
    let start = std::time::Instant::now();
    let out = f();
    stats.add_stage(stage, start.elapsed());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_times_accumulate() {
        let mut s = EnumStats::new(10);
        s.add_stage(Stage::BuildIndex, Duration::from_millis(5));
        s.add_stage(Stage::BuildIndex, Duration::from_millis(7));
        s.add_stage(Stage::Enumeration, Duration::from_millis(100));
        assert_eq!(s.stage_time(Stage::BuildIndex), Duration::from_millis(12));
        assert_eq!(s.stage_time(Stage::ClusterQuery), Duration::ZERO);
        assert_eq!(s.total_time(), Duration::from_millis(112));
        assert_eq!(s.num_queries, 10);
    }

    #[test]
    fn merge_combines_counters_and_times() {
        let mut a = EnumStats::new(5);
        a.add_stage(Stage::Enumeration, Duration::from_millis(10));
        a.counters.produced_paths = 3;
        a.peak_cached_results = 2;

        let mut b = EnumStats::new(5);
        b.add_stage(Stage::Enumeration, Duration::from_millis(20));
        b.add_stage(Stage::ClusterQuery, Duration::from_millis(1));
        b.counters.produced_paths = 4;
        b.num_shared_subqueries = 6;
        b.peak_cached_results = 9;

        a.merge(&b);
        assert_eq!(a.stage_time(Stage::Enumeration), Duration::from_millis(30));
        assert_eq!(a.stage_time(Stage::ClusterQuery), Duration::from_millis(1));
        assert_eq!(a.counters.produced_paths, 7);
        assert_eq!(a.num_shared_subqueries, 6);
        assert_eq!(a.peak_cached_results, 9);
    }

    #[test]
    fn timed_attributes_elapsed_time() {
        let mut s = EnumStats::new(1);
        let out = timed(&mut s, Stage::IdentifySubquery, || 21 * 2);
        assert_eq!(out, 42);
        assert!(s.stage_time(Stage::IdentifySubquery) >= Duration::ZERO);
        assert!(s.decomposition_row().contains("IdentifySubquery="));
    }

    #[test]
    fn counters_merge() {
        let mut a = SearchCounters {
            expanded_vertices: 1,
            scanned_edges: 2,
            ..Default::default()
        };
        let b = SearchCounters {
            expanded_vertices: 10,
            pruned_edges: 5,
            cache_splices: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.expanded_vertices, 11);
        assert_eq!(a.scanned_edges, 2);
        assert_eq!(a.pruned_edges, 5);
        assert_eq!(a.cache_splices, 1);
    }

    #[test]
    fn stage_display_names() {
        let names: Vec<String> = Stage::ALL.iter().map(|s| s.to_string()).collect();
        assert_eq!(
            names,
            vec![
                "BuildIndex",
                "ClusterQuery",
                "IdentifySubquery",
                "Enumeration"
            ]
        );
    }
}
