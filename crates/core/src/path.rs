//! Path representation and the flat arena [`PathSet`].
//!
//! Enumeration workloads materialise huge numbers of short paths (Fig. 13 of the paper
//! shows up to 10^12 results per query at k = 7 on the largest graphs). Storing each path
//! as its own `Vec<VertexId>` would pay one allocation per path; [`PathSet`] instead packs
//! every path into one growing `u32` buffer with an offset table, which is also the layout
//! the materialisation experiment (Fig. 3 (c)) scans.

use hcsp_graph::VertexId;
use std::fmt;

/// An owned simple path: the full vertex sequence, including both endpoints.
///
/// The number of *hops* is `vertices.len() - 1`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Path {
    vertices: Vec<VertexId>,
}

impl Path {
    /// Creates a path from a vertex sequence.
    ///
    /// # Panics
    /// Panics (in debug builds) if the sequence is empty; a path always has at least its
    /// start vertex.
    pub fn new(vertices: Vec<VertexId>) -> Self {
        debug_assert!(
            !vertices.is_empty(),
            "a path must contain at least one vertex"
        );
        Path { vertices }
    }

    /// A single-vertex path (zero hops).
    pub fn single(v: VertexId) -> Self {
        Path { vertices: vec![v] }
    }

    /// The vertex sequence.
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices
    }

    /// Number of hops (edges) on the path.
    pub fn hops(&self) -> usize {
        self.vertices.len() - 1
    }

    /// First vertex.
    pub fn first(&self) -> VertexId {
        self.vertices[0]
    }

    /// Last vertex.
    pub fn last(&self) -> VertexId {
        *self.vertices.last().expect("paths are non-empty")
    }

    /// Whether no vertex repeats (the *simple path* condition).
    pub fn is_simple(&self) -> bool {
        vertices_are_distinct(&self.vertices)
    }

    /// Reversed copy of the path (used to turn a `G^r` path into a `G` path).
    pub fn reversed(&self) -> Path {
        let mut vertices = self.vertices.clone();
        vertices.reverse();
        Path { vertices }
    }

    /// Consumes the path and returns its vertex sequence.
    pub fn into_vertices(self) -> Vec<VertexId> {
        self.vertices
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.vertices.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<VertexId>> for Path {
    fn from(vertices: Vec<VertexId>) -> Self {
        Path::new(vertices)
    }
}

/// Returns `true` when no vertex occurs twice in `vertices`.
///
/// Paths in this workload are short (≤ k ≤ ~15 vertices), so a quadratic scan beats
/// hashing; the cross-over observed in micro-benchmarks is far above the hop constraints
/// the paper evaluates (k ≤ 7).
pub fn vertices_are_distinct(vertices: &[VertexId]) -> bool {
    for (i, &v) in vertices.iter().enumerate() {
        if vertices[i + 1..].contains(&v) {
            return false;
        }
    }
    true
}

/// A compact, append-only set of paths stored in a single flat buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PathSet {
    /// Concatenated vertex sequences of all paths.
    buffer: Vec<VertexId>,
    /// `offsets[i]..offsets[i+1]` delimits path `i`; `offsets[0] == 0`.
    offsets: Vec<u32>,
}

impl PathSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        PathSet {
            buffer: Vec::new(),
            offsets: vec![0],
        }
    }

    /// Creates an empty set with room for roughly `paths` paths of `avg_len` vertices.
    pub fn with_capacity(paths: usize, avg_len: usize) -> Self {
        let mut offsets = Vec::with_capacity(paths + 1);
        offsets.push(0);
        PathSet {
            buffer: Vec::with_capacity(paths * avg_len),
            offsets,
        }
    }

    /// Number of stored paths.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a path given as a vertex slice.
    pub fn push_slice(&mut self, vertices: &[VertexId]) {
        debug_assert!(!vertices.is_empty());
        self.buffer.extend_from_slice(vertices);
        self.offsets.push(self.buffer.len() as u32);
    }

    /// Appends an owned [`Path`].
    pub fn push(&mut self, path: &Path) {
        self.push_slice(path.vertices());
    }

    /// Appends the concatenation of `prefix` and `suffix` without an intermediate
    /// allocation (used by the shared enumeration when splicing cached results).
    pub fn push_concat(&mut self, prefix: &[VertexId], suffix: &[VertexId]) {
        debug_assert!(!prefix.is_empty() || !suffix.is_empty());
        self.buffer.extend_from_slice(prefix);
        self.buffer.extend_from_slice(suffix);
        self.offsets.push(self.buffer.len() as u32);
    }

    /// The vertex slice of path `i`.
    pub fn get(&self, i: usize) -> &[VertexId] {
        let start = self.offsets[i] as usize;
        let end = self.offsets[i + 1] as usize;
        &self.buffer[start..end]
    }

    /// Iterates over all stored paths as slices.
    pub fn iter(&self) -> impl Iterator<Item = &[VertexId]> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Copies path `i` into an owned [`Path`].
    pub fn to_path(&self, i: usize) -> Path {
        Path::new(self.get(i).to_vec())
    }

    /// Collects every stored path into owned [`Path`] values (test / example convenience).
    pub fn to_paths(&self) -> Vec<Path> {
        self.iter().map(|s| Path::new(s.to_vec())).collect()
    }

    /// Total number of vertices stored across all paths — the work metric of the
    /// "retrieve and scan" side of the materialisation experiment.
    pub fn total_vertices(&self) -> usize {
        self.buffer.len()
    }

    /// Appends every path of `other` into `self`.
    pub fn extend_from(&mut self, other: &PathSet) {
        for p in other.iter() {
            self.push_slice(p);
        }
    }

    /// Removes all paths, keeping the allocations for reuse.
    pub fn clear(&mut self) {
        self.buffer.clear();
        self.offsets.clear();
        self.offsets.push(0);
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.buffer.len() * std::mem::size_of::<VertexId>()
            + self.offsets.len() * std::mem::size_of::<u32>()
    }
}

impl FromIterator<Path> for PathSet {
    fn from_iter<T: IntoIterator<Item = Path>>(iter: T) -> Self {
        let mut set = PathSet::new();
        for p in iter {
            set.push(&p);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u32) -> VertexId {
        VertexId(x)
    }

    fn p(ids: &[u32]) -> Path {
        Path::new(ids.iter().map(|&x| VertexId(x)).collect())
    }

    #[test]
    fn path_accessors() {
        let path = p(&[0, 4, 9, 3]);
        assert_eq!(path.hops(), 3);
        assert_eq!(path.first(), v(0));
        assert_eq!(path.last(), v(3));
        assert!(path.is_simple());
        assert_eq!(path.to_string(), "(v0, v4, v9, v3)");
        assert_eq!(path.reversed(), p(&[3, 9, 4, 0]));
        assert_eq!(Path::single(v(7)).hops(), 0);
        assert_eq!(path.clone().into_vertices().len(), 4);
    }

    #[test]
    fn simplicity_detects_repeats() {
        assert!(p(&[1, 2, 3]).is_simple());
        assert!(!p(&[1, 2, 1]).is_simple());
        assert!(vertices_are_distinct(&[]));
        assert!(vertices_are_distinct(&[v(5)]));
        assert!(!vertices_are_distinct(&[v(5), v(5)]));
    }

    #[test]
    fn path_set_push_and_get() {
        let mut set = PathSet::with_capacity(4, 3);
        assert!(set.is_empty());
        set.push(&p(&[0, 1, 2]));
        set.push_slice(&[v(3), v(4)]);
        set.push_concat(&[v(5), v(6)], &[v(7)]);
        assert_eq!(set.len(), 3);
        assert_eq!(set.get(0), &[v(0), v(1), v(2)]);
        assert_eq!(set.get(1), &[v(3), v(4)]);
        assert_eq!(set.get(2), &[v(5), v(6), v(7)]);
        assert_eq!(set.total_vertices(), 8);
        assert_eq!(set.to_path(1), p(&[3, 4]));
        assert_eq!(set.to_paths().len(), 3);
        assert!(set.heap_bytes() > 0);
    }

    #[test]
    fn path_set_iter_and_extend() {
        let a: PathSet = vec![p(&[0, 1]), p(&[2, 3])].into_iter().collect();
        let mut b = PathSet::new();
        b.push(&p(&[9]));
        b.extend_from(&a);
        assert_eq!(b.len(), 3);
        let all: Vec<_> = b.iter().map(|s| s.len()).collect();
        assert_eq!(all, vec![1, 2, 2]);
    }

    #[test]
    fn path_set_clear_retains_capacity() {
        let mut set = PathSet::new();
        set.push(&p(&[0, 1, 2]));
        let cap_before = set.buffer.capacity();
        set.clear();
        assert!(set.is_empty());
        assert_eq!(set.total_vertices(), 0);
        assert!(set.buffer.capacity() >= cap_before);
        set.push(&p(&[4]));
        assert_eq!(set.get(0), &[v(4)]);
    }
}
