//! Output sinks for enumerated HC-s-t paths.
//!
//! The paper's experiments never materialise the full result set of the largest queries
//! (it can exceed 10^10 paths, Fig. 13); they measure enumeration throughput. A
//! [`PathSink`] lets callers choose between collecting paths, counting them, or streaming
//! them to a callback, all through the same enumeration code path.

use crate::path::PathSet;
use crate::query::QueryId;
use hcsp_graph::VertexId;

/// Receives every result path of every query of a batch.
pub trait PathSink {
    /// Called once per enumerated HC-s-t path with the originating query and the full
    /// vertex sequence (from `s` to `t`).
    fn accept(&mut self, query: QueryId, path: &[VertexId]);

    /// Called when the batch finishes; default is a no-op.
    fn finish(&mut self) {}
}

/// Counts results per query without storing them.
#[derive(Debug, Default, Clone)]
pub struct CountSink {
    counts: Vec<u64>,
}

impl CountSink {
    /// Creates a counter for `num_queries` queries.
    pub fn new(num_queries: usize) -> Self {
        CountSink {
            counts: vec![0; num_queries],
        }
    }

    /// Number of paths reported for `query`.
    pub fn count(&self, query: QueryId) -> u64 {
        self.counts.get(query).copied().unwrap_or(0)
    }

    /// Per-query counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total across all queries.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

impl PathSink for CountSink {
    fn accept(&mut self, query: QueryId, _path: &[VertexId]) {
        if query >= self.counts.len() {
            self.counts.resize(query + 1, 0);
        }
        self.counts[query] += 1;
    }
}

/// Collects the full result paths per query into [`PathSet`] arenas.
#[derive(Debug, Default, Clone)]
pub struct CollectSink {
    per_query: Vec<PathSet>,
}

impl CollectSink {
    /// Creates a collector for `num_queries` queries.
    pub fn new(num_queries: usize) -> Self {
        CollectSink {
            per_query: vec![PathSet::new(); num_queries],
        }
    }

    /// The collected paths of `query`.
    pub fn paths(&self, query: QueryId) -> &PathSet {
        &self.per_query[query]
    }

    /// All per-query path sets.
    pub fn all(&self) -> &[PathSet] {
        &self.per_query
    }

    /// Total number of collected paths.
    pub fn total(&self) -> usize {
        self.per_query.iter().map(PathSet::len).sum()
    }

    /// Consumes the sink and returns the per-query path sets.
    pub fn into_inner(self) -> Vec<PathSet> {
        self.per_query
    }
}

impl PathSink for CollectSink {
    fn accept(&mut self, query: QueryId, path: &[VertexId]) {
        if query >= self.per_query.len() {
            self.per_query.resize(query + 1, PathSet::new());
        }
        self.per_query[query].push_slice(path);
    }
}

/// Streams every path to a closure (e.g. for writing to a file or a fraud alert queue).
pub struct CallbackSink<F: FnMut(QueryId, &[VertexId])> {
    callback: F,
}

impl<F: FnMut(QueryId, &[VertexId])> CallbackSink<F> {
    /// Wraps a closure as a sink.
    pub fn new(callback: F) -> Self {
        CallbackSink { callback }
    }
}

impl<F: FnMut(QueryId, &[VertexId])> PathSink for CallbackSink<F> {
    fn accept(&mut self, query: QueryId, path: &[VertexId]) {
        (self.callback)(query, path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(ids: &[u32]) -> Vec<VertexId> {
        ids.iter().map(|&x| VertexId(x)).collect()
    }

    #[test]
    fn count_sink_counts_per_query() {
        let mut sink = CountSink::new(2);
        sink.accept(0, &v(&[1, 2]));
        sink.accept(0, &v(&[1, 3]));
        sink.accept(1, &v(&[4, 5]));
        sink.finish();
        assert_eq!(sink.count(0), 2);
        assert_eq!(sink.count(1), 1);
        assert_eq!(sink.count(7), 0);
        assert_eq!(sink.total(), 3);
        assert_eq!(sink.counts(), &[2, 1]);
    }

    #[test]
    fn count_sink_grows_on_demand() {
        let mut sink = CountSink::default();
        sink.accept(3, &v(&[1]));
        assert_eq!(sink.count(3), 1);
        assert_eq!(sink.count(0), 0);
    }

    #[test]
    fn collect_sink_stores_paths() {
        let mut sink = CollectSink::new(1);
        sink.accept(0, &v(&[0, 1, 2]));
        sink.accept(0, &v(&[0, 3, 2]));
        assert_eq!(sink.paths(0).len(), 2);
        assert_eq!(sink.total(), 2);
        assert_eq!(sink.all().len(), 1);
        assert_eq!(sink.paths(0).get(1), v(&[0, 3, 2]).as_slice());
        let inner = sink.into_inner();
        assert_eq!(inner.len(), 1);
    }

    #[test]
    fn collect_sink_grows_on_demand() {
        let mut sink = CollectSink::default();
        sink.accept(2, &v(&[5, 6]));
        assert_eq!(sink.paths(2).len(), 1);
        assert_eq!(sink.paths(0).len(), 0);
    }

    #[test]
    fn callback_sink_invokes_closure() {
        let mut seen = Vec::new();
        {
            let mut sink = CallbackSink::new(|q, p: &[VertexId]| seen.push((q, p.len())));
            sink.accept(0, &v(&[1, 2, 3]));
            sink.accept(5, &v(&[9]));
        }
        assert_eq!(seen, vec![(0, 3), (5, 1)]);
    }
}
