//! Output sinks for enumerated HC-s-t paths, with early-termination control flow.
//!
//! The paper's experiments never materialise the full result set of the largest queries
//! (it can exceed 10^10 paths, Fig. 13); they measure enumeration throughput. A
//! [`PathSink`] lets callers choose between collecting paths, counting them, or streaming
//! them to a callback, all through the same enumeration code path.
//!
//! Since the request/response redesign, `accept` returns a [`SinkFlow`] verdict: a sink
//! that has everything it needs for a query (an `Exists` probe after the first path, a
//! `FirstK` request after `k` paths — see [`crate::spec::SpecSink`]) answers
//! [`SinkFlow::SkipQuery`] and the enumeration core abandons that query's remaining work
//! immediately; [`SinkFlow::Stop`] aborts the whole batch. The companion
//! [`PathSink::remaining_quota`] hint lets the per-query drivers pick a short-circuiting
//! execution strategy *before* doing any work (streaming join instead of materialising
//! both halves, or skipping a satisfied query outright).

use crate::path::PathSet;
use crate::query::QueryId;
use hcsp_graph::VertexId;

/// Control-flow verdict a [`PathSink`] returns from [`PathSink::accept`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SinkFlow {
    /// Keep enumerating: the sink wants more results for this query.
    #[default]
    Continue,
    /// This query is satisfied: drop its remaining enumeration work, continue the batch.
    SkipQuery,
    /// Every query is satisfied: abandon all remaining batch work.
    Stop,
}

impl SinkFlow {
    /// Whether enumeration for the current query should go on.
    #[inline]
    pub fn is_continue(self) -> bool {
        matches!(self, SinkFlow::Continue)
    }

    /// Whether the whole batch should stop (not just the current query).
    #[inline]
    pub fn stops_batch(self) -> bool {
        matches!(self, SinkFlow::Stop)
    }

    /// Collapses a per-query verdict into a batch-level one: `Stop` propagates,
    /// `SkipQuery` is consumed (the query is done, the batch goes on).
    #[inline]
    pub fn batch_flow(self) -> SinkFlow {
        match self {
            SinkFlow::Stop => SinkFlow::Stop,
            _ => SinkFlow::Continue,
        }
    }
}

/// Receives every result path of every query of a batch.
pub trait PathSink {
    /// Called once per enumerated HC-s-t path with the originating query and the full
    /// vertex sequence (from `s` to `t`). The returned [`SinkFlow`] verdict is honoured
    /// by every enumeration core: `SkipQuery` stops the query the moment its result mode
    /// is satisfied, `Stop` aborts the remaining batch.
    fn accept(&mut self, query: QueryId, path: &[VertexId]) -> SinkFlow;

    /// How many more accepted paths the sink could possibly want for `query`;
    /// `None` means unbounded (the default).
    ///
    /// `Some(0)` lets a driver skip the query's work entirely; any other `Some(_)`
    /// invites a short-circuiting strategy (e.g. the streaming half-search join of
    /// [`crate::pathenum::PathEnum`] that terminates the DFS mid-flight instead of
    /// materialising both halves).
    fn remaining_quota(&self, _query: QueryId) -> Option<u64> {
        None
    }

    /// Called when the batch finishes; default is a no-op.
    fn finish(&mut self) {}
}

/// Counts results per query without storing them.
///
/// The sink must be sized to the batch up front ([`CountSink::new`]); an out-of-range
/// [`QueryId`] is a bug in the caller's id routing and panics instead of growing silently
/// (silent growth historically masked query-id mix-ups in result merging).
#[derive(Debug, Default, Clone)]
pub struct CountSink {
    counts: Vec<u64>,
}

impl CountSink {
    /// Creates a counter for `num_queries` queries.
    pub fn new(num_queries: usize) -> Self {
        CountSink {
            counts: vec![0; num_queries],
        }
    }

    /// Number of paths reported for `query`.
    pub fn count(&self, query: QueryId) -> u64 {
        self.counts.get(query).copied().unwrap_or(0)
    }

    /// Per-query counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total across all queries.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

impl PathSink for CountSink {
    fn accept(&mut self, query: QueryId, _path: &[VertexId]) -> SinkFlow {
        debug_assert!(
            query < self.counts.len(),
            "query id {query} out of range for a CountSink of {} queries — size the sink \
             to the batch up front",
            self.counts.len()
        );
        self.counts[query] += 1;
        SinkFlow::Continue
    }
}

/// Collects the full result paths per query into [`PathSet`] arenas.
///
/// Like [`CountSink`], the sink is sized up front and panics on an out-of-range
/// [`QueryId`] instead of growing silently.
#[derive(Debug, Default, Clone)]
pub struct CollectSink {
    per_query: Vec<PathSet>,
}

impl CollectSink {
    /// Creates a collector for `num_queries` queries.
    pub fn new(num_queries: usize) -> Self {
        CollectSink {
            per_query: vec![PathSet::new(); num_queries],
        }
    }

    /// The collected paths of `query`.
    pub fn paths(&self, query: QueryId) -> &PathSet {
        &self.per_query[query]
    }

    /// All per-query path sets.
    pub fn all(&self) -> &[PathSet] {
        &self.per_query
    }

    /// Total number of collected paths.
    pub fn total(&self) -> usize {
        self.per_query.iter().map(PathSet::len).sum()
    }

    /// Consumes the sink and returns the per-query path sets.
    pub fn into_inner(self) -> Vec<PathSet> {
        self.per_query
    }
}

impl PathSink for CollectSink {
    fn accept(&mut self, query: QueryId, path: &[VertexId]) -> SinkFlow {
        debug_assert!(
            query < self.per_query.len(),
            "query id {query} out of range for a CollectSink of {} queries — size the \
             sink to the batch up front",
            self.per_query.len()
        );
        self.per_query[query].push_slice(path);
        SinkFlow::Continue
    }
}

/// Streams every path to a closure (e.g. for writing to a file or a fraud alert queue).
pub struct CallbackSink<F: FnMut(QueryId, &[VertexId])> {
    callback: F,
}

impl<F: FnMut(QueryId, &[VertexId])> CallbackSink<F> {
    /// Wraps a closure as a sink.
    pub fn new(callback: F) -> Self {
        CallbackSink { callback }
    }
}

impl<F: FnMut(QueryId, &[VertexId])> PathSink for CallbackSink<F> {
    fn accept(&mut self, query: QueryId, path: &[VertexId]) -> SinkFlow {
        (self.callback)(query, path);
        SinkFlow::Continue
    }
}

/// Streams every path to a closure that returns its own [`SinkFlow`] verdict (the
/// control-flow-aware sibling of [`CallbackSink`], for callers that implement custom
/// early termination without defining a sink type).
pub struct ControlSink<F: FnMut(QueryId, &[VertexId]) -> SinkFlow> {
    callback: F,
}

impl<F: FnMut(QueryId, &[VertexId]) -> SinkFlow> ControlSink<F> {
    /// Wraps a verdict-returning closure as a sink.
    pub fn new(callback: F) -> Self {
        ControlSink { callback }
    }
}

impl<F: FnMut(QueryId, &[VertexId]) -> SinkFlow> PathSink for ControlSink<F> {
    fn accept(&mut self, query: QueryId, path: &[VertexId]) -> SinkFlow {
        (self.callback)(query, path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(ids: &[u32]) -> Vec<VertexId> {
        ids.iter().map(|&x| VertexId(x)).collect()
    }

    #[test]
    fn count_sink_counts_per_query() {
        let mut sink = CountSink::new(2);
        assert_eq!(sink.accept(0, &v(&[1, 2])), SinkFlow::Continue);
        sink.accept(0, &v(&[1, 3]));
        sink.accept(1, &v(&[4, 5]));
        sink.finish();
        assert_eq!(sink.count(0), 2);
        assert_eq!(sink.count(1), 1);
        assert_eq!(sink.count(7), 0);
        assert_eq!(sink.total(), 3);
        assert_eq!(sink.counts(), &[2, 1]);
        assert_eq!(sink.remaining_quota(0), None);
    }

    #[test]
    #[should_panic]
    fn count_sink_rejects_out_of_range_ids() {
        let mut sink = CountSink::new(2);
        sink.accept(3, &v(&[1]));
    }

    #[test]
    fn collect_sink_stores_paths() {
        let mut sink = CollectSink::new(1);
        assert_eq!(sink.accept(0, &v(&[0, 1, 2])), SinkFlow::Continue);
        sink.accept(0, &v(&[0, 3, 2]));
        assert_eq!(sink.paths(0).len(), 2);
        assert_eq!(sink.total(), 2);
        assert_eq!(sink.all().len(), 1);
        assert_eq!(sink.paths(0).get(1), v(&[0, 3, 2]).as_slice());
        let inner = sink.into_inner();
        assert_eq!(inner.len(), 1);
    }

    #[test]
    #[should_panic]
    fn collect_sink_rejects_out_of_range_ids() {
        let mut sink = CollectSink::new(1);
        sink.accept(2, &v(&[5, 6]));
    }

    #[test]
    fn callback_sink_invokes_closure() {
        let mut seen = Vec::new();
        {
            let mut sink = CallbackSink::new(|q, p: &[VertexId]| seen.push((q, p.len())));
            sink.accept(0, &v(&[1, 2, 3]));
            sink.accept(5, &v(&[9]));
        }
        assert_eq!(seen, vec![(0, 3), (5, 1)]);
    }

    #[test]
    fn control_sink_propagates_the_closure_verdict() {
        let mut taken = 0;
        let mut sink = ControlSink::new(|_q, _p: &[VertexId]| {
            taken += 1;
            if taken >= 2 {
                SinkFlow::SkipQuery
            } else {
                SinkFlow::Continue
            }
        });
        assert_eq!(sink.accept(0, &v(&[1])), SinkFlow::Continue);
        assert_eq!(sink.accept(0, &v(&[2])), SinkFlow::SkipQuery);
    }

    #[test]
    fn flow_helpers() {
        assert!(SinkFlow::Continue.is_continue());
        assert!(!SinkFlow::SkipQuery.is_continue());
        assert!(SinkFlow::Stop.stops_batch());
        assert!(!SinkFlow::SkipQuery.stops_batch());
        assert_eq!(SinkFlow::SkipQuery.batch_flow(), SinkFlow::Continue);
        assert_eq!(SinkFlow::Stop.batch_flow(), SinkFlow::Stop);
        assert_eq!(SinkFlow::default(), SinkFlow::Continue);
    }
}
