//! Typed request/response query vocabulary: result modes, per-query budgets, and the
//! mode-driven [`SpecSink`].
//!
//! The paper measures enumeration throughput precisely because full result sets are
//! unmaterialisable (>10^10 paths on the largest queries, Fig. 13) — yet a plain
//! [`PathQuery`] batch has exactly one semantics: enumerate every path. Real serving
//! scenarios want weaker (and far cheaper) answers:
//!
//! * fraud detection asks *"does a suspicious path exist?"* — [`ResultMode::Exists`],
//! * analytics wants counts — [`ResultMode::Count`],
//! * interactive exploration wants the first few paths — [`ResultMode::FirstK`],
//! * offline jobs still want everything — [`ResultMode::Collect`].
//!
//! A [`QuerySpec`] pairs a query with its mode (plus an optional path budget); a batch of
//! specs runs through the same shared-index, shared-computation pipeline as a plain
//! batch and returns one typed [`QueryResponse`] per spec. The enabling mechanism is the
//! [`SpecSink`]: it answers [`SinkFlow::SkipQuery`] the moment a query's mode is
//! satisfied (and [`SinkFlow::Stop`] once every query is), which the enumeration cores
//! translate into genuinely skipped work — aborted DFS branches, short-circuited joins,
//! and dropped cluster work.

use crate::path::PathSet;
use crate::query::{PathQuery, QueryId};
use crate::sink::{PathSink, SinkFlow};
use crate::stats::EnumStats;
use hcsp_graph::VertexId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What a query wants back: the result mode of a [`QuerySpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResultMode {
    /// Does at least one HC-s-t path exist? Answered without enumeration whenever the
    /// batch index already knows (`dist(s, t) ≤ k`), and by the first enumerated path
    /// otherwise.
    Exists,
    /// How many HC-s-t paths are there? Full enumeration work, no materialisation.
    Count,
    /// The first `k` result paths in the engine's enumeration order (the real-time
    /// regime: a bounded answer with early-terminating search).
    FirstK(usize),
    /// Every result path, materialised (the classic batch semantics).
    Collect,
}

impl fmt::Display for ResultMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResultMode::Exists => f.write_str("Exists"),
            ResultMode::Count => f.write_str("Count"),
            ResultMode::FirstK(k) => write!(f, "FirstK({k})"),
            ResultMode::Collect => f.write_str("Collect"),
        }
    }
}

/// One typed query request: the HC-s-t path query plus the shape of the wanted answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QuerySpec {
    /// The underlying hop-constrained s-t path query.
    pub query: PathQuery,
    /// What to return (and, implicitly, when enumeration may stop).
    pub mode: ResultMode,
    /// Optional per-query work budget: a hard cap on the number of result paths this
    /// query may produce, across every mode. `Count` saturates at the cap (and stops
    /// paying enumeration cost there), `Collect` degrades into "first budget paths",
    /// `FirstK(k)` is capped at `min(k, budget)`. `None` (default) means unbounded.
    pub path_budget: Option<u64>,
}

impl QuerySpec {
    /// Creates a spec with no path budget.
    pub fn new(query: PathQuery, mode: ResultMode) -> Self {
        QuerySpec {
            query,
            mode,
            path_budget: None,
        }
    }

    /// An existence probe.
    pub fn exists(query: PathQuery) -> Self {
        QuerySpec::new(query, ResultMode::Exists)
    }

    /// A count request.
    pub fn count(query: PathQuery) -> Self {
        QuerySpec::new(query, ResultMode::Count)
    }

    /// A first-`k`-paths request.
    pub fn first_k(query: PathQuery, k: usize) -> Self {
        QuerySpec::new(query, ResultMode::FirstK(k))
    }

    /// A full-enumeration request (the classic batch semantics).
    pub fn collect(query: PathQuery) -> Self {
        QuerySpec::new(query, ResultMode::Collect)
    }

    /// Returns the spec with a path budget (see [`QuerySpec::path_budget`]).
    pub fn with_path_budget(mut self, budget: u64) -> Self {
        self.path_budget = Some(budget);
        self
    }

    /// The maximum number of result paths this spec can ever accept; `None` = unbounded.
    pub fn need(&self) -> Option<u64> {
        let mode_need = match self.mode {
            ResultMode::Exists => Some(1),
            ResultMode::FirstK(k) => Some(k as u64),
            ResultMode::Count | ResultMode::Collect => None,
        };
        match (mode_need, self.path_budget) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// The response this spec yields when the query produces no paths at all.
    pub fn empty_response(&self) -> QueryResponse {
        match self.mode {
            ResultMode::Exists => QueryResponse::Exists(false),
            ResultMode::Count => QueryResponse::Count(0),
            ResultMode::FirstK(_) | ResultMode::Collect => QueryResponse::Paths(PathSet::new()),
        }
    }
}

impl fmt::Display for QuerySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.query, self.mode)?;
        if let Some(b) = self.path_budget {
            write!(f, "(budget {b})")?;
        }
        Ok(())
    }
}

/// The typed answer to one [`QuerySpec`].
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResponse {
    /// Answer to [`ResultMode::Exists`].
    Exists(bool),
    /// Answer to [`ResultMode::Count`] (saturated at the spec's path budget, if any).
    Count(u64),
    /// Answer to [`ResultMode::FirstK`] / [`ResultMode::Collect`]: the result paths in
    /// the engine's enumeration order for the executed batch.
    Paths(PathSet),
}

impl QueryResponse {
    /// Whether at least one result path exists / was observed (defined for every mode).
    pub fn exists(&self) -> bool {
        match self {
            QueryResponse::Exists(b) => *b,
            QueryResponse::Count(c) => *c > 0,
            QueryResponse::Paths(p) => !p.is_empty(),
        }
    }

    /// The observed result count; `None` for an existence probe (which stops at one).
    pub fn count(&self) -> Option<u64> {
        match self {
            QueryResponse::Exists(_) => None,
            QueryResponse::Count(c) => Some(*c),
            QueryResponse::Paths(p) => Some(p.len() as u64),
        }
    }

    /// The materialised paths, when the mode produced any.
    pub fn paths(&self) -> Option<&PathSet> {
        match self {
            QueryResponse::Paths(p) => Some(p),
            _ => None,
        }
    }

    /// Consumes the response into its materialised paths, when the mode produced any.
    pub fn into_paths(self) -> Option<PathSet> {
        match self {
            QueryResponse::Paths(p) => Some(p),
            _ => None,
        }
    }
}

/// The outcome of running a batch of [`QuerySpec`]s: one response per spec, in batch
/// order, plus the run statistics.
#[derive(Debug, Clone)]
pub struct SpecOutcome {
    /// One typed response per submitted spec.
    pub responses: Vec<QueryResponse>,
    /// Run statistics (stage timings, counters, clustering info).
    pub stats: EnumStats,
}

impl SpecOutcome {
    /// The response of spec `i`.
    pub fn response(&self, i: usize) -> &QueryResponse {
        &self.responses[i]
    }
}

/// Per-query accumulation state of a [`SpecSink`].
#[derive(Debug, Clone)]
struct SpecState {
    mode: ResultMode,
    need: Option<u64>,
    seen: u64,
    paths: PathSet,
    done: bool,
}

/// The mode-driven sink behind [`crate::Engine::run_specs`]: accumulates exactly what
/// each query's [`ResultMode`] asks for and reports [`SinkFlow::SkipQuery`] /
/// [`SinkFlow::Stop`] the moment a query / the whole batch is satisfied.
///
/// Query ids are spec positions; like the other sinks it is sized up front and treats an
/// out-of-range id as a routing bug.
#[derive(Debug, Clone)]
pub struct SpecSink {
    states: Vec<SpecState>,
    /// Queries that could still accept a result (unbounded queries stay open until
    /// [`SpecSink::finish`]); 0 ⇒ every further verdict is `Stop`.
    open: usize,
}

impl SpecSink {
    /// Creates a sink for a batch of specs (ids are the specs' positions).
    pub fn new(specs: &[QuerySpec]) -> Self {
        let mut open = specs.len();
        let states = specs
            .iter()
            .map(|spec| {
                let need = spec.need();
                let done = need == Some(0);
                if done {
                    open -= 1;
                }
                SpecState {
                    mode: spec.mode,
                    need,
                    seen: 0,
                    paths: PathSet::new(),
                    done,
                }
            })
            .collect();
        SpecSink { states, open }
    }

    /// Resolves an [`ResultMode::Exists`] query without enumeration (the index
    /// fast path: `dist(s, t) ≤ k` already decides it). A no-op for queries that are
    /// already done.
    pub fn resolve_exists(&mut self, query: QueryId, exists: bool) {
        let state = &mut self.states[query];
        debug_assert!(
            matches!(state.mode, ResultMode::Exists),
            "resolve_exists on a {} query",
            state.mode
        );
        if state.done {
            return;
        }
        state.seen = u64::from(exists);
        state.done = true;
        self.open -= 1;
    }

    /// Whether `query` can still accept results.
    pub fn is_open(&self, query: QueryId) -> bool {
        !self.states[query].done
    }

    /// Number of queries that can still accept results.
    pub fn open_queries(&self) -> usize {
        self.open
    }

    /// Consumes the sink into one typed response per spec, in spec order.
    pub fn into_responses(self) -> Vec<QueryResponse> {
        self.states
            .into_iter()
            .map(|state| match state.mode {
                ResultMode::Exists => QueryResponse::Exists(state.seen > 0),
                ResultMode::Count => QueryResponse::Count(state.seen),
                ResultMode::FirstK(_) | ResultMode::Collect => QueryResponse::Paths(state.paths),
            })
            .collect()
    }
}

impl PathSink for SpecSink {
    fn accept(&mut self, query: QueryId, path: &[VertexId]) -> SinkFlow {
        debug_assert!(
            query < self.states.len(),
            "query id {query} out of range for a SpecSink of {} specs",
            self.states.len()
        );
        let state = &mut self.states[query];
        if state.done {
            // Defensive: a core that ignored an earlier SkipQuery must not corrupt the
            // response (an Exists probe stays satisfied, a FirstK set stays at k).
            return SinkFlow::SkipQuery;
        }
        state.seen += 1;
        if matches!(state.mode, ResultMode::FirstK(_) | ResultMode::Collect) {
            state.paths.push_slice(path);
        }
        if state.need.is_some_and(|need| state.seen >= need) {
            state.done = true;
            self.open -= 1;
            return if self.open == 0 {
                SinkFlow::Stop
            } else {
                SinkFlow::SkipQuery
            };
        }
        SinkFlow::Continue
    }

    fn remaining_quota(&self, query: QueryId) -> Option<u64> {
        let state = &self.states[query];
        if state.done {
            return Some(0);
        }
        state.need.map(|need| need - state.seen)
    }
}

/// A sink adapter translating batch-local query ids through a route table (used to run a
/// *filtered* sub-batch — e.g. with index-answered `Exists` queries removed — against a
/// sink that speaks original spec positions).
pub(crate) struct RoutedSink<'a, S> {
    inner: &'a mut S,
    route: &'a [QueryId],
}

impl<'a, S: PathSink> RoutedSink<'a, S> {
    pub(crate) fn new(inner: &'a mut S, route: &'a [QueryId]) -> Self {
        RoutedSink { inner, route }
    }
}

impl<S: PathSink> PathSink for RoutedSink<'_, S> {
    fn accept(&mut self, query: QueryId, path: &[VertexId]) -> SinkFlow {
        self.inner.accept(self.route[query], path)
    }

    fn remaining_quota(&self, query: QueryId) -> Option<u64> {
        self.inner.remaining_quota(self.route[query])
    }

    // finish() is deliberately not forwarded: the outer driver finishes the inner sink
    // exactly once, after every sub-batch has run.
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(ids: &[u32]) -> Vec<VertexId> {
        ids.iter().map(|&x| VertexId(x)).collect()
    }

    fn q() -> PathQuery {
        PathQuery::new(0u32, 1u32, 3)
    }

    #[test]
    fn needs_follow_mode_and_budget() {
        assert_eq!(QuerySpec::exists(q()).need(), Some(1));
        assert_eq!(QuerySpec::count(q()).need(), None);
        assert_eq!(QuerySpec::first_k(q(), 4).need(), Some(4));
        assert_eq!(QuerySpec::collect(q()).need(), None);
        assert_eq!(QuerySpec::count(q()).with_path_budget(7).need(), Some(7));
        assert_eq!(
            QuerySpec::first_k(q(), 4).with_path_budget(2).need(),
            Some(2)
        );
        assert_eq!(
            QuerySpec::first_k(q(), 2).with_path_budget(9).need(),
            Some(2)
        );
    }

    #[test]
    fn exists_closes_after_the_first_path() {
        let specs = vec![QuerySpec::exists(q()), QuerySpec::collect(q())];
        let mut sink = SpecSink::new(&specs);
        assert_eq!(sink.remaining_quota(0), Some(1));
        assert_eq!(sink.accept(0, &v(&[0, 1])), SinkFlow::SkipQuery);
        assert_eq!(sink.remaining_quota(0), Some(0));
        assert!(!sink.is_open(0));
        // The collect query keeps the batch alive.
        assert_eq!(sink.accept(1, &v(&[0, 1])), SinkFlow::Continue);
        let responses = sink.into_responses();
        assert_eq!(responses[0], QueryResponse::Exists(true));
        assert_eq!(responses[1].count(), Some(1));
    }

    #[test]
    fn stop_fires_when_the_last_bounded_query_closes() {
        let specs = vec![QuerySpec::exists(q()), QuerySpec::first_k(q(), 2)];
        let mut sink = SpecSink::new(&specs);
        assert_eq!(sink.accept(1, &v(&[0, 1])), SinkFlow::Continue);
        assert_eq!(sink.accept(0, &v(&[0, 1])), SinkFlow::SkipQuery);
        assert_eq!(sink.accept(1, &v(&[0, 2, 1])), SinkFlow::Stop);
        assert_eq!(sink.open_queries(), 0);
        // Further accepts on a closed query are rejected, not recorded.
        assert_eq!(sink.accept(1, &v(&[0, 3, 1])), SinkFlow::SkipQuery);
        let responses = sink.into_responses();
        let paths = responses[1].paths().unwrap();
        assert_eq!(paths.len(), 2);
        assert_eq!(paths.get(1), v(&[0, 2, 1]).as_slice());
    }

    #[test]
    fn zero_need_specs_start_closed() {
        let specs = vec![
            QuerySpec::first_k(q(), 0),
            QuerySpec::collect(q()).with_path_budget(0),
        ];
        let sink = SpecSink::new(&specs);
        assert_eq!(sink.open_queries(), 0);
        assert_eq!(sink.remaining_quota(0), Some(0));
        let responses = sink.into_responses();
        assert_eq!(responses[0], QueryResponse::Paths(PathSet::new()));
        assert_eq!(responses[1], QueryResponse::Paths(PathSet::new()));
    }

    #[test]
    fn count_saturates_at_its_budget() {
        let specs = vec![QuerySpec::count(q()).with_path_budget(2)];
        let mut sink = SpecSink::new(&specs);
        assert_eq!(sink.accept(0, &v(&[0, 1])), SinkFlow::Continue);
        assert_eq!(sink.accept(0, &v(&[0, 2, 1])), SinkFlow::Stop);
        assert_eq!(sink.into_responses()[0], QueryResponse::Count(2));
    }

    #[test]
    fn resolve_exists_skips_enumeration() {
        let specs = vec![QuerySpec::exists(q()), QuerySpec::exists(q())];
        let mut sink = SpecSink::new(&specs);
        sink.resolve_exists(0, true);
        sink.resolve_exists(1, false);
        assert_eq!(sink.open_queries(), 0);
        assert_eq!(sink.remaining_quota(0), Some(0));
        // Idempotent on an already-closed query.
        sink.resolve_exists(1, false);
        let responses = sink.into_responses();
        assert_eq!(responses[0], QueryResponse::Exists(true));
        assert_eq!(responses[1], QueryResponse::Exists(false));
    }

    #[test]
    fn routed_sink_translates_ids() {
        let specs = vec![QuerySpec::count(q()), QuerySpec::count(q())];
        let mut sink = SpecSink::new(&specs);
        let route = vec![1usize];
        let mut routed = RoutedSink::new(&mut sink, &route);
        routed.accept(0, &v(&[0, 1]));
        assert_eq!(routed.remaining_quota(0), None);
        let responses = sink.into_responses();
        assert_eq!(responses[0], QueryResponse::Count(0));
        assert_eq!(responses[1], QueryResponse::Count(1));
    }

    #[test]
    fn response_accessors() {
        assert!(QueryResponse::Exists(true).exists());
        assert!(!QueryResponse::Exists(false).exists());
        assert_eq!(QueryResponse::Exists(true).count(), None);
        assert!(QueryResponse::Count(3).exists());
        assert_eq!(QueryResponse::Count(3).count(), Some(3));
        let mut set = PathSet::new();
        set.push_slice(&v(&[0, 1]));
        let r = QueryResponse::Paths(set);
        assert!(r.exists());
        assert_eq!(r.count(), Some(1));
        assert_eq!(r.paths().unwrap().len(), 1);
        assert_eq!(r.into_paths().unwrap().len(), 1);
        assert_eq!(QueryResponse::Count(0).paths(), None);
        assert_eq!(QueryResponse::Exists(false).into_paths(), None);
    }

    #[test]
    fn empty_responses_and_display() {
        assert_eq!(
            QuerySpec::exists(q()).empty_response(),
            QueryResponse::Exists(false)
        );
        assert_eq!(
            QuerySpec::count(q()).empty_response(),
            QueryResponse::Count(0)
        );
        assert_eq!(
            QuerySpec::first_k(q(), 3).empty_response(),
            QueryResponse::Paths(PathSet::new())
        );
        let spec = QuerySpec::first_k(q(), 3).with_path_budget(2);
        assert_eq!(spec.to_string(), "q(v0, v1, 3)[FirstK(3)](budget 2)");
        assert_eq!(ResultMode::Exists.to_string(), "Exists");
        assert_eq!(ResultMode::Collect.to_string(), "Collect");
    }
}
