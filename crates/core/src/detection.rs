//! `DetectCommonQuery` — common HC-s path query detection (Algorithm 3, Phase 2 of §IV-B).
//!
//! Within one query cluster and one search direction, the detection simulates the first
//! hops of every half query *level-synchronously*: at each remaining-hop-budget level it
//! records which half queries (or previously detected dominating queries) are currently
//! extending which vertex. When several of them meet at the same vertex with the same
//! remaining budget, their continuations are identical and a *dominating HC-s path query*
//! rooted at that vertex is created; the original queries become its users in Ψ. When a
//! query's extension runs into the root of an already-identified HC-s path query whose
//! budget covers the remaining need, a reuse edge is added instead of extending further
//! (the second observation of §IV-B, illustrated by `q_{v12,1,Gr}` vs `q_{v12,2,Gr}`).
//!
//! The simulation is restricted to the vertices that can still contribute to at least one
//! query of the cluster (the union of the anchor-side index neighbourhoods), so its cost
//! stays proportional to the index size, matching the paper's claim that IdentifySubquery
//! time is dominated by BFS-scale work (Exp-3).

use crate::query::{HcsQuery, PathQuery, QueryId};
use crate::sharing_graph::{NodeId, SharingGraph};
use hcsp_graph::{DiGraph, Direction, VertexId};
use hcsp_index::BatchIndex;
use std::collections::{BTreeMap, BTreeSet};

/// Summary of one detection run (one cluster, one direction), used by stats and tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DetectionOutcome {
    /// Dominating HC-s path queries newly created by this run.
    pub dominating_created: usize,
    /// Reuse edges added towards already-identified HC-s path queries.
    pub reuse_edges: usize,
    /// Number of (vertex, level) cells the simulation touched.
    pub cells_visited: usize,
}

/// Runs Algorithm 3 for one cluster of queries in one direction, extending `sharing`.
///
/// `cluster` carries `(query id, query)` pairs; the full-query nodes and the trivial half
/// query edges (Alg. 3 lines 2–4) are created here as well, so a caller only needs to call
/// this twice (forward + backward) per cluster and then evaluate Ψ.
pub fn detect_common_queries(
    graph: &DiGraph,
    index: &BatchIndex,
    cluster: &[(QueryId, PathQuery)],
    dir: Direction,
    sharing: &mut SharingGraph,
) -> DetectionOutcome {
    let mut outcome = DetectionOutcome::default();
    if cluster.is_empty() {
        return outcome;
    }

    // The set of vertices that can still matter for any query of the cluster: within the
    // hop bound of at least one anchor on the pruning side. Extensions outside this set can
    // never produce a useful prefix, so the simulation skips them.
    let mut useful: BTreeSet<VertexId> = BTreeSet::new();
    for (_, q) in cluster {
        let anchor = q.anchor(dir);
        let reachable = match dir {
            Direction::Forward => index.gamma_backward(anchor, q.hop_limit),
            Direction::Backward => index.gamma_forward(anchor, q.hop_limit),
        };
        useful.extend(reachable);
    }

    // Lines 2-4: every query contributes its half query as the initial extension of its
    // root; the half query node provides for the full query node with offset 0.
    let k_max = cluster
        .iter()
        .map(|(_, q)| q.budget(dir))
        .max()
        .unwrap_or(0);
    // pending[b] holds the half-query nodes that become active once the level reaches
    // their own budget b.
    let mut pending: Vec<Vec<(VertexId, NodeId)>> = vec![Vec::new(); k_max as usize + 1];
    for &(qid, ref q) in cluster {
        let full_node = sharing.add_full_query(qid);
        let half = q.half_query(dir);
        let half_node = sharing.add_hcs_query(half);
        sharing.add_dependency(half_node, full_node, 0);
        pending[half.budget as usize].push((half.root, half_node));
    }

    // root_query[v] = the most recently identified HC-s path query node rooted at v (MQ).
    let mut root_query: BTreeMap<VertexId, NodeId> = BTreeMap::new();
    for level in (0..=k_max).rev() {
        for &(root, node) in &pending[level as usize] {
            root_query.insert(root, node);
        }
    }

    // active[v] = nodes whose enumeration currently sits at v with the current remaining
    // budget. Initialised per level from `pending`.
    let mut active: BTreeMap<VertexId, BTreeSet<NodeId>> = BTreeMap::new();

    let mut remaining = k_max;
    loop {
        // Activate the half queries whose budget equals the current remaining budget.
        for &(root, node) in &pending[remaining as usize] {
            active.entry(root).or_default().insert(node);
        }

        // Lines 7-19: detect convergence per vertex and elect a representative.
        let mut representatives: BTreeMap<VertexId, NodeId> = BTreeMap::new();
        for (&vertex, nodes) in &active {
            outcome.cells_visited += 1;
            debug_assert!(!nodes.is_empty());
            if nodes.len() == 1 {
                representatives.insert(vertex, *nodes.iter().next().unwrap());
                continue;
            }
            // Several queries share all continuations from `vertex` with `remaining` hops:
            // represent them by the dominating HC-s path query q_{vertex, remaining, dir}.
            let dominating = HcsQuery::new(vertex, remaining, dir);
            let existed = sharing.find_hcs(&dominating).is_some();
            let dom_node = sharing.add_hcs_query(dominating);
            if !existed {
                outcome.dominating_created += 1;
            }
            for &user in nodes {
                if user != dom_node {
                    let user_budget = sharing
                        .node(user)
                        .as_hcs()
                        .expect("active nodes are HC-s path queries")
                        .budget;
                    sharing.add_dependency(dom_node, user, user_budget - remaining);
                }
            }
            representatives.insert(vertex, dom_node);
            root_query.insert(vertex, dom_node);
        }

        if remaining == 0 {
            break;
        }

        // Lines 20-24: extend every representative by one hop.
        let mut next_active: BTreeMap<VertexId, BTreeSet<NodeId>> = BTreeMap::new();
        for (&vertex, &rep) in &representatives {
            let rep_budget = sharing
                .node(rep)
                .as_hcs()
                .expect("representatives are HC-s path queries")
                .budget;
            for &next in graph.neighbors(vertex, dir) {
                if !useful.contains(&next) {
                    continue;
                }
                // If an HC-s path query rooted at `next` already covers the remaining need,
                // reuse it instead of extending (second observation of §IV-B).
                let reusable = root_query.get(&next).copied().filter(|&candidate| {
                    candidate != rep
                        && sharing
                            .node(candidate)
                            .as_hcs()
                            .map(|q| q.covers_budget(remaining.saturating_sub(1)))
                            .unwrap_or(false)
                });
                if let Some(provider) = reusable {
                    let offset = rep_budget - (remaining - 1);
                    if sharing.add_dependency(provider, rep, offset) {
                        outcome.reuse_edges += 1;
                        continue;
                    }
                    // The edge would have created a cycle; fall through and keep extending.
                }
                next_active.entry(next).or_default().insert(rep);
            }
        }

        active = next_active;
        remaining -= 1;
        if active.is_empty() && pending[..=remaining as usize].iter().all(Vec::is_empty) {
            break;
        }
    }

    outcome
}

/// Detection entry point used by `BatchEnum`: runs both directions for one cluster.
pub fn detect_cluster(
    graph: &DiGraph,
    index: &BatchIndex,
    cluster: &[(QueryId, PathQuery)],
    sharing: &mut SharingGraph,
) -> DetectionOutcome {
    let mut total = detect_common_queries(graph, index, cluster, Direction::Forward, sharing);
    let backward = detect_common_queries(graph, index, cluster, Direction::Backward, sharing);
    total.dominating_created += backward.dominating_created;
    total.reuse_edges += backward.reuse_edges;
    total.cells_visited += backward.cells_visited;
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::BatchSummary;
    use crate::sharing_graph::QueryNode;
    use hcsp_graph::generators::regular::{complete, grid};
    use hcsp_graph::GraphBuilder;

    fn build_index(graph: &DiGraph, queries: &[PathQuery]) -> BatchIndex {
        let summary = BatchSummary::of(queries);
        BatchIndex::build(
            graph,
            &summary.sources,
            &summary.targets,
            summary.max_hop_limit,
        )
    }

    fn cluster_of(queries: &[PathQuery]) -> Vec<(QueryId, PathQuery)> {
        queries.iter().copied().enumerate().collect()
    }

    /// The running example of the paper (Fig. 1): 16 vertices, the edges drawn in the
    /// figure.
    fn paper_graph() -> DiGraph {
        let edges: &[(u32, u32)] = &[
            (0, 1),
            (0, 4),
            (2, 1),
            (2, 4),
            (5, 1),
            (1, 7),
            (1, 8),
            (7, 10),
            (7, 8),
            (10, 12),
            (12, 11),
            (12, 13),
            (4, 9),
            (9, 3),
            (9, 15),
            (9, 8),
            (3, 6),
            (15, 6),
            (6, 11),
            (6, 13),
            (6, 14),
        ];
        let mut b = GraphBuilder::new();
        for &(u, v) in edges {
            b.add_edge(VertexId(u), VertexId(v));
        }
        b.reserve_vertices(16);
        b.build()
    }

    #[test]
    fn converging_queries_create_a_dominating_query() {
        // Paper Example 4.2, cluster {q0, q1, q2} on G: q0(v0,v11,5), q1(v2,v13,5),
        // q2(v5,v12,5). All three reach v1 after one hop with the same remaining budget,
        // so q_{v1,2,G} must be detected; q0 and q1 also converge on v4, giving q_{v4,2,G}.
        let g = paper_graph();
        let queries = vec![
            PathQuery::new(0u32, 11u32, 5),
            PathQuery::new(2u32, 13u32, 5),
            PathQuery::new(5u32, 12u32, 5),
        ];
        let index = build_index(&g, &queries);
        let mut sharing = SharingGraph::new();
        let outcome = detect_common_queries(
            &g,
            &index,
            &cluster_of(&queries),
            Direction::Forward,
            &mut sharing,
        );
        assert!(outcome.dominating_created >= 2, "{outcome:?}");
        let dom_v1 = sharing.find_hcs(&HcsQuery::new(1u32, 2, Direction::Forward));
        let dom_v4 = sharing.find_hcs(&HcsQuery::new(4u32, 2, Direction::Forward));
        assert!(dom_v1.is_some(), "q_{{v1,2,G}} must be detected");
        assert!(dom_v4.is_some(), "q_{{v4,2,G}} must be detected");
        // q_{v1,2,G} provides for all three initial half queries.
        assert_eq!(sharing.users(dom_v1.unwrap()).len(), 3);
        assert_eq!(sharing.users(dom_v4.unwrap()).len(), 2);
    }

    #[test]
    fn backward_detection_finds_shared_target_side_queries() {
        // Paper Fig. 5 (b): q0, q1, q2 on Gr converge on v12 after one hop from v11 / v13.
        let g = paper_graph();
        let queries = vec![
            PathQuery::new(0u32, 11u32, 5),
            PathQuery::new(2u32, 13u32, 5),
            PathQuery::new(5u32, 12u32, 5),
        ];
        let index = build_index(&g, &queries);
        let mut sharing = SharingGraph::new();
        detect_common_queries(
            &g,
            &index,
            &cluster_of(&queries),
            Direction::Backward,
            &mut sharing,
        );
        // Either the dominating q_{v12,1,Gr} is created or the existing half query
        // q_{v12,2,Gr} (from q2) is reused; both forms of sharing are acceptable, but at
        // least one sharing edge towards a v12-rooted provider must exist.
        let reused = sharing
            .nodes()
            .filter_map(|(id, n)| n.as_hcs().map(|q| (id, *q)))
            .filter(|(_, q)| q.root == VertexId(12) && q.direction == Direction::Backward)
            .any(|(id, _)| !sharing.users(id).is_empty());
        assert!(reused, "target-side sharing through v12 must be detected");
    }

    #[test]
    fn detection_builds_a_processable_dag() {
        let g = paper_graph();
        let queries = vec![
            PathQuery::new(0u32, 11u32, 5),
            PathQuery::new(2u32, 13u32, 5),
            PathQuery::new(5u32, 12u32, 5),
            PathQuery::new(4u32, 14u32, 4),
            PathQuery::new(9u32, 14u32, 3),
        ];
        let index = build_index(&g, &queries);
        let mut sharing = SharingGraph::new();
        detect_cluster(&g, &index, &cluster_of(&queries), &mut sharing);
        let order = sharing.topological_order();
        assert_eq!(order.len(), sharing.len());
        // Every full query node has exactly two providers: its forward and backward halves.
        for (id, node) in sharing.nodes() {
            if matches!(node, QueryNode::Full(_)) {
                assert_eq!(sharing.providers(id).len(), 2, "full query {id} providers");
            }
        }
    }

    #[test]
    fn disjoint_queries_share_nothing() {
        // Two far-apart corners of a grid: no common computation exists.
        let g = grid(6, 6);
        let queries = vec![
            PathQuery::new(0u32, 7u32, 2),
            PathQuery::new(28u32, 35u32, 2),
        ];
        let index = build_index(&g, &queries);
        let mut sharing = SharingGraph::new();
        let outcome = detect_cluster(&g, &index, &cluster_of(&queries), &mut sharing);
        assert_eq!(outcome.dominating_created, 0);
        // Only the 2 full nodes + 4 half nodes exist.
        assert_eq!(sharing.len(), 6);
    }

    #[test]
    fn identical_queries_collapse_onto_the_same_half_nodes() {
        let g = complete(6);
        let queries = vec![PathQuery::new(0u32, 5u32, 4), PathQuery::new(0u32, 5u32, 4)];
        let index = build_index(&g, &queries);
        let mut sharing = SharingGraph::new();
        detect_cluster(&g, &index, &cluster_of(&queries), &mut sharing);
        // 2 full nodes share one forward half and one backward half (plus any detected
        // dominating queries).
        let forward_half = sharing
            .find_hcs(&HcsQuery::new(0u32, 2, Direction::Forward))
            .unwrap();
        assert_eq!(sharing.users(forward_half).len(), 2);
    }

    #[test]
    fn empty_cluster_is_a_noop() {
        let g = complete(3);
        let index = build_index(&g, &[PathQuery::new(0u32, 1u32, 2)]);
        let mut sharing = SharingGraph::new();
        let outcome = detect_common_queries(&g, &index, &[], Direction::Forward, &mut sharing);
        assert_eq!(outcome, DetectionOutcome::default());
        assert!(sharing.is_empty());
    }
}
