//! The user-facing batch engine: algorithm selection, configuration, and result assembly.
//!
//! The engine wraps the five algorithms compared throughout the paper's evaluation
//! (`PathEnum`, `BasicEnum`, `BasicEnum+`, `BatchEnum`, `BatchEnum+`) behind one entry
//! point, so examples, integration tests, and the experiment harness all drive the exact
//! same code paths.

use crate::basic_enum::BasicEnum;
use crate::batch_enum::{BatchEnum, DEFAULT_GAMMA};
use crate::epoch::{Epoch, EpochAdvance};
use crate::parallel::{
    run_pathenum_parallel, run_specs_parallel_pathenum, run_specs_parallel_with_index,
    ParallelBasicEnum, ParallelBatchEnum, Parallelism, SplitPolicy,
};
use crate::path::PathSet;
use crate::pathenum::PathEnum;
use crate::query::{BatchSummary, PathQuery};
use crate::search::ExpansionMode;
use crate::search_order::SearchOrder;
use crate::sink::{CollectSink, CountSink, PathSink};
use crate::spec::{QuerySpec, ResultMode, RoutedSink, SpecOutcome, SpecSink};
use crate::stats::{EnumStats, Stage};
use hcsp_graph::{DeltaGraph, DiGraph, GraphUpdate};
use hcsp_index::BatchIndex;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// The algorithms evaluated in the paper (§V "Algorithms").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// State-of-the-art single-query algorithm, one isolated run per query.
    PathEnum,
    /// Algorithm 1: shared multi-source BFS index, independent per-query enumeration.
    BasicEnum,
    /// `BasicEnum` with the optimized search order.
    BasicEnumPlus,
    /// Algorithm 4: clustering + HC-s path query sharing.
    BatchEnum,
    /// `BatchEnum` with the optimized search order.
    BatchEnumPlus,
}

impl Algorithm {
    /// All algorithms in the order the paper's figures list them.
    pub const ALL: [Algorithm; 5] = [
        Algorithm::PathEnum,
        Algorithm::BasicEnum,
        Algorithm::BasicEnumPlus,
        Algorithm::BatchEnum,
        Algorithm::BatchEnumPlus,
    ];

    /// The search order the algorithm uses.
    pub fn search_order(self) -> SearchOrder {
        match self {
            Algorithm::PathEnum | Algorithm::BasicEnum | Algorithm::BatchEnum => {
                SearchOrder::VertexId
            }
            Algorithm::BasicEnumPlus | Algorithm::BatchEnumPlus => SearchOrder::DistanceThenDegree,
        }
    }

    /// Whether the algorithm performs HC-s path query sharing.
    pub fn shares_computation(self) -> bool {
        matches!(self, Algorithm::BatchEnum | Algorithm::BatchEnumPlus)
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Algorithm::PathEnum => "PathEnum",
            Algorithm::BasicEnum => "BasicEnum",
            Algorithm::BasicEnumPlus => "BasicEnum+",
            Algorithm::BatchEnum => "BatchEnum",
            Algorithm::BatchEnumPlus => "BatchEnum+",
        };
        f.write_str(name)
    }
}

/// Builder-configured batch query engine.
#[derive(Debug, Clone, Copy)]
pub struct BatchEngine {
    algorithm: Algorithm,
    gamma: f64,
    mode: ExpansionMode,
}

impl Default for BatchEngine {
    fn default() -> Self {
        BatchEngine {
            algorithm: Algorithm::BatchEnumPlus,
            gamma: DEFAULT_GAMMA,
            mode: ExpansionMode::default(),
        }
    }
}

/// Builder for [`BatchEngine`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchEngineBuilder {
    algorithm: Option<Algorithm>,
    gamma: Option<f64>,
    mode: Option<ExpansionMode>,
}

impl BatchEngineBuilder {
    /// Selects the algorithm (default: `BatchEnum+`).
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = Some(algorithm);
        self
    }

    /// Sets the clustering threshold γ (default 0.5; only used by the sharing algorithms).
    pub fn gamma(mut self, gamma: f64) -> Self {
        self.gamma = Some(gamma);
        self
    }

    /// Selects the half-search expansion mode (default: the frontier engine; the
    /// recursive oracle exists for cross-validation and A/B benchmarking).
    pub fn expansion_mode(mut self, mode: ExpansionMode) -> Self {
        self.mode = Some(mode);
        self
    }

    /// Finalises the engine.
    pub fn build(self) -> BatchEngine {
        BatchEngine {
            algorithm: self.algorithm.unwrap_or(Algorithm::BatchEnumPlus),
            gamma: self.gamma.unwrap_or(DEFAULT_GAMMA).clamp(0.0, 1.0),
            mode: self.mode.unwrap_or_default(),
        }
    }
}

/// The outcome of a batch run when results are collected.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// The result paths of every query, in batch order.
    pub paths: Vec<PathSet>,
    /// Run statistics (stage timings, counters, clustering info).
    pub stats: EnumStats,
}

impl BatchOutcome {
    /// Number of result paths of query `i`.
    pub fn count(&self, i: usize) -> usize {
        self.paths[i].len()
    }

    /// Total number of result paths across the batch.
    pub fn total(&self) -> usize {
        self.paths.iter().map(PathSet::len).sum()
    }
}

impl BatchEngine {
    /// Starts building an engine.
    pub fn builder() -> BatchEngineBuilder {
        BatchEngineBuilder::default()
    }

    /// Convenience constructor with an explicit algorithm and the default γ.
    pub fn with_algorithm(algorithm: Algorithm) -> Self {
        BatchEngine {
            algorithm,
            gamma: DEFAULT_GAMMA,
            mode: ExpansionMode::default(),
        }
    }

    /// The configured algorithm.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The configured clustering threshold.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The configured half-search expansion mode.
    pub fn expansion_mode(&self) -> ExpansionMode {
        self.mode
    }

    /// Runs the batch, streaming every result path into a caller-provided sink.
    pub fn run_with_sink<S: PathSink>(
        &self,
        graph: &DiGraph,
        queries: &[PathQuery],
        sink: &mut S,
    ) -> EnumStats {
        match self.algorithm {
            Algorithm::PathEnum => PathEnum::new(self.algorithm.search_order())
                .with_mode(self.mode)
                .run_batch(graph, queries, sink),
            Algorithm::BasicEnum | Algorithm::BasicEnumPlus => {
                BasicEnum::new(self.algorithm.search_order())
                    .with_mode(self.mode)
                    .run_batch(graph, queries, sink)
            }
            Algorithm::BatchEnum | Algorithm::BatchEnumPlus => {
                BatchEnum::new(self.algorithm.search_order(), self.gamma)
                    .with_mode(self.mode)
                    .run_batch(graph, queries, sink)
            }
        }
    }

    /// Runs the batch and collects every result path.
    pub fn run(&self, graph: &DiGraph, queries: &[PathQuery]) -> BatchOutcome {
        let mut sink = CollectSink::new(queries.len());
        let stats = self.run_with_sink(graph, queries, &mut sink);
        BatchOutcome {
            paths: sink.into_inner(),
            stats,
        }
    }

    /// Runs the batch counting results only (the mode used by the timing experiments,
    /// where materialising every path of every query would dominate memory).
    pub fn run_counting(&self, graph: &DiGraph, queries: &[PathQuery]) -> (Vec<u64>, EnumStats) {
        let mut sink = CountSink::new(queries.len());
        let stats = self.run_with_sink(graph, queries, &mut sink);
        (sink.counts().to_vec(), stats)
    }

    /// Runs a batch of typed query requests and returns one typed response per spec.
    ///
    /// Mixed-mode batches share one index (and, for the sharing algorithms, one
    /// clustering/detection pass); each query stops the moment its [`ResultMode`] is
    /// satisfied — `Exists` probes are answered straight from the index whenever the
    /// algorithm builds a shared one, `FirstK` terminates the search after `k` paths.
    pub fn run_specs(&self, graph: &DiGraph, specs: &[QuerySpec]) -> SpecOutcome {
        if specs.is_empty() {
            return SpecOutcome {
                responses: Vec::new(),
                stats: EnumStats::new(0),
            };
        }
        let mut sink = SpecSink::new(specs);
        let stats = match self.algorithm {
            // The real-time baseline has no shared index to probe: every spec runs the
            // per-query pipeline (quota-aware, so bounded modes still short-circuit).
            Algorithm::PathEnum => {
                let queries: Vec<PathQuery> = specs.iter().map(|s| s.query).collect();
                PathEnum::new(self.algorithm.search_order())
                    .with_mode(self.mode)
                    .run_batch(graph, &queries, &mut sink)
            }
            _ => {
                let start = Instant::now();
                let queries: Vec<PathQuery> = specs.iter().map(|s| s.query).collect();
                let summary = BatchSummary::of(&queries);
                let index = BatchIndex::build(
                    graph,
                    &summary.sources,
                    &summary.targets,
                    summary.max_hop_limit,
                );
                let build_time = start.elapsed();
                let mut stats = run_specs_with_index(self, graph, &index, specs, &mut sink);
                stats.add_stage(Stage::BuildIndex, build_time);
                stats
            }
        };
        SpecOutcome {
            responses: sink.into_responses(),
            stats,
        }
    }
}

/// Answers every still-open `Exists` spec straight from the shared index: `dist(s, t) ≤ k`
/// iff some simple path of at most `k` hops exists (a shortest path is always simple), and
/// the batch index knows that distance exactly up to its bound.
fn resolve_exists_from_index(index: &BatchIndex, sink: &mut SpecSink, specs: &[QuerySpec]) {
    for (i, spec) in specs.iter().enumerate() {
        if matches!(spec.mode, ResultMode::Exists) && sink.is_open(i) {
            let d = index.dist_to_target(spec.query.source, spec.query.target);
            sink.resolve_exists(i, d != hcsp_index::INF && d <= spec.query.hop_limit);
        }
    }
}

/// The spec pre-pass shared by the sequential and parallel pipelines: resolve every
/// index-answerable `Exists` probe on `sink`, then return the **live** specs (those that
/// still need enumeration work) together with their original positions. Both pipelines
/// must filter identically or their byte-identical-responses guarantee breaks — which is
/// why this exists once.
fn filter_live_specs(
    index: &BatchIndex,
    sink: &mut SpecSink,
    specs: &[QuerySpec],
) -> (Vec<QuerySpec>, Vec<usize>) {
    resolve_exists_from_index(index, sink, specs);
    // Satisfied specs (index-answered Exists probes, zero-need degenerates) leave the
    // enumeration batch entirely: they must not cost clustering or detection work.
    let mut live: Vec<QuerySpec> = Vec::new();
    let mut route: Vec<usize> = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        if sink.remaining_quota(i) != Some(0) {
            live.push(*spec);
            route.push(i);
        }
    }
    (live, route)
}

/// The shared-index spec pipeline: `Exists` fast path, dead-query filtering, then the
/// configured batch algorithm over the live remainder with id-routed delivery into the
/// caller's [`SpecSink`]. Not used for `PathEnum` (no shared index by definition).
fn run_specs_with_index(
    config: &BatchEngine,
    graph: &DiGraph,
    index: &BatchIndex,
    specs: &[QuerySpec],
    sink: &mut SpecSink,
) -> EnumStats {
    let (live, route) = filter_live_specs(index, sink, specs);
    let live_queries: Vec<PathQuery> = live.iter().map(|s| s.query).collect();
    let order = config.algorithm().search_order();
    let mut routed = RoutedSink::new(sink, &route);
    let mut stats = match config.algorithm() {
        Algorithm::PathEnum => unreachable!("PathEnum specs run without a shared index"),
        Algorithm::BasicEnum | Algorithm::BasicEnumPlus => BasicEnum::new(order)
            .with_mode(config.expansion_mode())
            .run_batch_with_index(graph, index, &live_queries, &mut routed),
        _ => BatchEnum::new(order, config.gamma())
            .with_mode(config.expansion_mode())
            .run_batch_with_index(graph, index, &live_queries, &mut routed),
    };
    stats.num_queries = specs.len();
    stats
}

/// Index-reuse accounting of a long-lived [`Engine`].
///
/// A one-shot [`BatchEngine`] run rebuilds the batch index from scratch every time; the
/// serving regime amortises that cost, and these counters make the amortisation visible
/// (they feed the service-mode throughput reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexReuse {
    /// Full index builds: the first batch, plus every batch whose hop bound exceeded the
    /// cached index's bound.
    pub rebuilds: usize,
    /// Incremental extensions: batches whose endpoints were only partially covered, so
    /// only the missing roots were BFS'd.
    pub extensions: usize,
    /// Batches served with zero index work (everything already covered).
    pub hits: usize,
    /// Roots added by incremental extensions.
    pub roots_added: usize,
    /// Cache drops forced by the root cap (see [`Engine::set_index_root_cap`]).
    pub resets: usize,
    /// Graph-update batches whose index maintenance ran incrementally (insert relaxation
    /// and/or lazy delete marking) instead of dropping the cache.
    pub update_refreshes: usize,
    /// Graph-update batches that dropped the cached index because the net edge delta
    /// exceeded [`Engine::set_update_refresh_cap`]; the next batch rebuilds from scratch.
    pub invalidations: usize,
    /// Batches that had to re-BFS delete-dirtied roots before running (the lazy half of
    /// delete maintenance).
    pub dirty_flushes: usize,
    /// Total roots re-BFS'd across those flushes.
    pub dirty_roots_refreshed: usize,
    /// [`Engine::advance_to_epoch`] calls that actually crossed at least one epoch.
    pub epoch_advances: usize,
    /// Roots hit by a deleted shortest-path edge whose re-BFS the precise survivor scan
    /// proved unnecessary — work the conservative marking rule would have spent.
    pub deletes_supported: usize,
}

/// What one [`Engine::apply_updates`] call did to the graph and the cached index.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdateSummary {
    /// Updates that changed the graph (inserts of absent edges, deletes of present ones).
    pub applied: usize,
    /// No-op updates (inserting an existing edge, deleting an absent one).
    pub ignored: usize,
    /// Net edges added after intra-batch cancellation (an insert-then-delete pair of the
    /// same edge counts towards `applied` twice but nets to nothing).
    pub net_inserted: usize,
    /// Net edges removed after intra-batch cancellation.
    pub net_deleted: usize,
    /// Vertices the update batch grew the graph by.
    pub new_vertices: usize,
    /// Distance entries improved/added by the incremental insert relaxation.
    pub refreshed_entries: usize,
    /// Index roots marked dirty by deletions (re-BFS'd lazily before the next batch
    /// runs) — only roots that truly lost their last equal-length shortest path.
    pub dirty_roots: usize,
    /// Roots hit by a deleted shortest-path edge that kept an equal-length alternative:
    /// their re-BFS was skipped by the precise survivor scan.
    pub supported_deletes: usize,
    /// Whether the cached index was dropped instead of incrementally maintained.
    pub invalidated: bool,
}

impl UpdateSummary {
    /// Net number of edge mutations that survived intra-batch cancellation.
    pub fn net_changes(&self) -> usize {
        self.net_inserted + self.net_deleted
    }
}

/// A long-lived, reusable query engine: one graph, one cached [`BatchIndex`] that
/// survives across batches.
///
/// [`BatchEngine`] is the one-shot entry point the offline experiments use — every call
/// pays a fresh index build. An `Engine` instead hoists graph and index out of the
/// per-batch path, which is what a serving layer needs: across micro-batches most query
/// endpoints repeat, so the index is *extended* with the few new roots (cheap, incremental
/// multi-source BFS) and fully rebuilt **only when the hop-limit bound grows** (cached
/// entries are truncated at the old bound and cannot be deepened in place). On a rebuild,
/// every previously indexed root is retained so earlier query shapes stay covered.
///
/// [`Algorithm::PathEnum`] deliberately bypasses the cache: it is the single-query
/// real-time baseline, defined by building its own per-query index.
///
/// # Example
///
/// ```
/// use hcsp_core::{BatchEngine, Engine, PathQuery};
/// use hcsp_graph::DiGraph;
///
/// // A diamond with two parallel 2-hop routes.
/// let graph = DiGraph::from_edge_list(4, &[(0, 1), (1, 3), (0, 2), (2, 3)]).unwrap();
/// let mut engine = Engine::new(graph, BatchEngine::default());
///
/// // The first batch builds the index.
/// let outcome = engine.run(&[PathQuery::new(0u32, 3u32, 3)]);
/// assert_eq!(outcome.count(0), 2);
///
/// // A later batch over the same endpoints reuses it outright, even with a smaller k.
/// let outcome = engine.run(&[PathQuery::new(0u32, 3u32, 2)]);
/// assert_eq!(outcome.count(0), 2);
/// assert_eq!(engine.index_reuse().rebuilds, 1);
/// assert_eq!(engine.index_reuse().hits, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    config: BatchEngine,
    graph: Arc<DiGraph>,
    index: Option<BatchIndex>,
    index_root_cap: Option<usize>,
    parallel_split: SplitPolicy,
    update_refresh_cap: Option<usize>,
    reuse: IndexReuse,
    /// The epoch version [`Engine::graph`] corresponds to (0 unless the engine is driven
    /// through the epoch protocol).
    epoch_id: u64,
}

/// Default cap on the net edge delta of one [`Engine::apply_updates`] call above which
/// the cached index is invalidated instead of incrementally refreshed: per-edge
/// relaxation/marking work scales with the delta, a rebuild with the (batch-bounded)
/// root count, so very large deltas are cheaper to absorb by rebuilding.
pub const DEFAULT_UPDATE_REFRESH_CAP: usize = 1024;

impl Engine {
    /// Creates an engine over a graph with the given one-shot configuration.
    pub fn new(graph: impl Into<Arc<DiGraph>>, config: BatchEngine) -> Self {
        Engine {
            config,
            graph: graph.into(),
            index: None,
            index_root_cap: None,
            parallel_split: SplitPolicy::Never,
            update_refresh_cap: Some(DEFAULT_UPDATE_REFRESH_CAP),
            reuse: IndexReuse::default(),
            epoch_id: 0,
        }
    }

    /// Convenience constructor with an explicit algorithm and the default γ.
    pub fn with_algorithm(graph: impl Into<Arc<DiGraph>>, algorithm: Algorithm) -> Self {
        Engine::new(graph, BatchEngine::with_algorithm(algorithm))
    }

    /// Creates an engine pinned to `epoch`'s snapshot (see [`crate::epoch`]).
    pub fn at_epoch(epoch: &Epoch, config: BatchEngine) -> Self {
        let mut engine = Engine::new(epoch.graph_arc(), config);
        engine.epoch_id = epoch.id();
        engine
    }

    /// The epoch version the engine's graph corresponds to.
    pub fn epoch_id(&self) -> u64 {
        self.epoch_id
    }

    /// The graph the engine serves.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// A clonable handle to the graph (for spawning sibling engines on worker threads).
    pub fn graph_arc(&self) -> Arc<DiGraph> {
        Arc::clone(&self.graph)
    }

    /// The one-shot configuration the engine runs per batch.
    pub fn config(&self) -> BatchEngine {
        self.config
    }

    /// The configured algorithm.
    pub fn algorithm(&self) -> Algorithm {
        self.config.algorithm()
    }

    /// Index-reuse accounting so far.
    pub fn index_reuse(&self) -> IndexReuse {
        self.reuse
    }

    /// Approximate heap footprint of the cached index in bytes (0 before the first batch).
    pub fn index_heap_bytes(&self) -> usize {
        self.index.as_ref().map_or(0, |idx| {
            idx.source_index().heap_bytes() + idx.target_index().heap_bytes()
        })
    }

    /// Drops the cached index (e.g. to bound memory after a burst of one-off endpoints);
    /// the next batch rebuilds from scratch.
    pub fn reset_index(&mut self) {
        self.index = None;
    }

    /// Bounds the cached index: once its total root count (sources + targets) exceeds
    /// `cap`, the cache is dropped before the next batch and rebuilt from that batch
    /// alone. `None` (the default) never resets.
    ///
    /// Without a cap a long-lived engine indexes every endpoint it has ever served —
    /// ideal for a stable working set, unbounded for a stream of one-off endpoints. The
    /// cap is a high-water mark, not a strict limit: the index may exceed it within one
    /// batch and is trimmed at the next [`Engine::run`]-family call. Resets are counted
    /// in [`IndexReuse::resets`].
    pub fn set_index_root_cap(&mut self, cap: Option<usize>) {
        self.index_root_cap = cap;
    }

    /// The configured root cap, if any.
    pub fn index_root_cap(&self) -> Option<usize> {
        self.index_root_cap
    }

    /// Selects the intra-cluster work-splitting policy of the *parallel* run paths (see
    /// [`ParallelBatchEnum::split`](ParallelBatchEnum)): oversized clusters split into
    /// bounded sub-clusters, trading cross-split sharing for parallel slack and a
    /// bounded shared cache. [`SplitPolicy::Never`] (default) never splits; sequential
    /// runs are unaffected either way.
    pub fn set_parallel_split_policy(&mut self, split: SplitPolicy) {
        self.parallel_split = split;
    }

    /// The configured intra-cluster split policy.
    pub fn parallel_split_policy(&self) -> SplitPolicy {
        self.parallel_split
    }

    /// Compat wrapper over [`Engine::set_parallel_split_policy`]: `Some(c > 0)` caps
    /// clusters at `c` queries, `Some(0)` and `None` never split.
    pub fn set_parallel_cluster_cap(&mut self, cap: Option<usize>) {
        self.parallel_split = SplitPolicy::from_cap(cap);
    }

    /// The configured parallel cluster cap, if the policy is a fixed cap.
    pub fn parallel_cluster_cap(&self) -> Option<usize> {
        self.parallel_split.cap()
    }

    /// Caps the net edge delta one [`Engine::apply_updates`] call maintains
    /// incrementally; larger deltas drop the cached index instead (the invalidation
    /// path, counted in [`IndexReuse::invalidations`]). `None` always maintains
    /// incrementally. Default: [`DEFAULT_UPDATE_REFRESH_CAP`].
    pub fn set_update_refresh_cap(&mut self, cap: Option<usize>) {
        self.update_refresh_cap = cap;
    }

    /// The configured update-refresh cap, if any.
    pub fn update_refresh_cap(&self) -> Option<usize> {
        self.update_refresh_cap
    }

    /// Applies a batch of edge insertions/deletions to the served graph, keeping the
    /// cached index consistent.
    ///
    /// The updates are staged in a [`DeltaGraph`] (intra-batch duplicates and
    /// insert/delete pairs cancel), compacted into a fresh CSR snapshot that replaces
    /// [`Engine::graph`], and the cached [`BatchIndex`] — if any — is maintained:
    ///
    /// * **insertions** refresh affected distance entries immediately (inserts can only
    ///   shorten bounded distances, so a seeded relaxation is exact);
    /// * **deletions** run the precise survivor scan: a root is marked dirty only when an
    ///   affected vertex lost its last equal-length shortest-path parent (otherwise the
    ///   map is provably intact and the re-BFS is skipped —
    ///   [`UpdateSummary::supported_deletes`]); the re-BFS of marked roots is deferred
    ///   until the next batch runs ([`IndexReuse::dirty_flushes`]), so back-to-back
    ///   update calls coalesce their repair work;
    /// * a net delta larger than [`Engine::set_update_refresh_cap`] drops the index
    ///   outright (rebuilding is cheaper than per-edge maintenance at that size).
    ///
    /// Queries issued after `apply_updates` returns observe exactly the post-update
    /// snapshot: results are identical to a fresh engine built over the updated graph.
    ///
    /// # Example
    ///
    /// ```
    /// use hcsp_core::{BatchEngine, Engine, PathQuery};
    /// use hcsp_graph::{DiGraph, GraphUpdate};
    ///
    /// let graph = DiGraph::from_edge_list(4, &[(0, 1), (1, 3)]).unwrap();
    /// let mut engine = Engine::new(graph, BatchEngine::default());
    /// assert_eq!(engine.run(&[PathQuery::new(0u32, 3u32, 3)]).count(0), 1);
    ///
    /// // Open a second route and retire the first hop of the old one.
    /// let summary = engine.apply_updates(&[
    ///     GraphUpdate::insert(0u32, 2u32),
    ///     GraphUpdate::insert(2u32, 3u32),
    ///     GraphUpdate::delete(0u32, 1u32),
    /// ]);
    /// assert_eq!(summary.applied, 3);
    /// assert_eq!(engine.run(&[PathQuery::new(0u32, 3u32, 3)]).count(0), 1);
    /// assert!(engine.graph().has_edge(hcsp_graph::VertexId(0), hcsp_graph::VertexId(2)));
    /// ```
    pub fn apply_updates(&mut self, updates: &[GraphUpdate]) -> UpdateSummary {
        let mut summary = UpdateSummary::default();
        if updates.is_empty() {
            return summary;
        }
        let mut delta = DeltaGraph::new(Arc::clone(&self.graph));
        for update in updates {
            if delta.apply(update) {
                summary.applied += 1;
            } else {
                summary.ignored += 1;
            }
        }
        let inserted: Vec<_> = delta.added_edges().collect();
        let deleted: Vec<_> = delta.removed_edges().collect();
        summary.net_inserted = inserted.len();
        summary.net_deleted = deleted.len();
        summary.new_vertices = delta.num_vertices() - self.graph.num_vertices();
        if !delta.is_dirty() {
            return summary;
        }
        self.graph = Arc::new(delta.compact());
        if let Some(index) = self.index.as_mut() {
            let over_cap = self
                .update_refresh_cap
                .is_some_and(|cap| summary.net_changes() > cap);
            if over_cap {
                self.index = None;
                self.reuse.invalidations += 1;
                summary.invalidated = true;
            } else {
                let outcome = index.note_deletions(&self.graph, &deleted);
                summary.dirty_roots = outcome.marked;
                summary.supported_deletes = outcome.supported;
                summary.refreshed_entries = index.apply_insertions(&self.graph, &inserted);
                self.reuse.update_refreshes += 1;
                self.reuse.deletes_supported += outcome.supported;
            }
        }
        summary
    }

    /// Advances the engine to `epoch`, maintaining the cached index incrementally.
    ///
    /// A no-op when already there. When the engine trails by at most the epoch's
    /// retained delta window ([`crate::epoch::MAX_EPOCH_DELTAS`]), the missed deltas are
    /// net-merged and absorbed exactly like one combined [`Engine::apply_updates`]
    /// batch: precise delete marking first, then insert relaxation, against the target
    /// snapshot. Trailing further (or a net delta over
    /// [`Engine::set_update_refresh_cap`]) swaps the graph and drops the cached index —
    /// always correct, just not incremental. The graph pointer afterwards is `epoch`'s
    /// own `Arc`, so sibling engines advanced to the same epoch share one CSR.
    pub fn advance_to_epoch(&mut self, epoch: &Epoch) -> EpochAdvance {
        let mut advance = EpochAdvance::default();
        if epoch.id() == self.epoch_id {
            return advance;
        }
        advance.epochs_crossed = epoch.id().saturating_sub(self.epoch_id);
        let deltas = epoch.deltas_since(self.epoch_id);
        match (deltas, self.index.as_mut()) {
            (Some(deltas), Some(index)) => {
                let (inserted, deleted) = crate::epoch::merge_deltas(deltas);
                advance.net_inserted = inserted.len();
                advance.net_deleted = deleted.len();
                self.graph = epoch.graph_arc();
                let over_cap = self
                    .update_refresh_cap
                    .is_some_and(|cap| inserted.len() + deleted.len() > cap);
                if over_cap {
                    self.index = None;
                    self.reuse.invalidations += 1;
                    advance.invalidated = true;
                } else {
                    let outcome = index.note_deletions(&self.graph, &deleted);
                    advance.dirty_roots = outcome.marked;
                    advance.supported_deletes = outcome.supported;
                    index.apply_insertions(&self.graph, &inserted);
                    self.reuse.update_refreshes += 1;
                    self.reuse.deletes_supported += outcome.supported;
                }
            }
            (None, Some(_)) => {
                // Too far behind the retained window (or handed an older epoch): no
                // incremental route, so fall back to a plain snapshot swap.
                self.graph = epoch.graph_arc();
                self.index = None;
                self.reuse.invalidations += 1;
                advance.invalidated = true;
            }
            (_, None) => {
                self.graph = epoch.graph_arc();
            }
        }
        self.epoch_id = epoch.id();
        if advance.epochs_crossed > 0 {
            self.reuse.epoch_advances += 1;
        }
        advance
    }

    /// Makes the cached index cover `summary`, rebuilding only when the hop bound grew and
    /// extending incrementally otherwise. Returns the time spent.
    fn ensure_index(&mut self, summary: &BatchSummary) -> std::time::Duration {
        let start = Instant::now();
        if let (Some(cap), Some(index)) = (self.index_root_cap, &self.index) {
            if index.source_index().num_roots() + index.target_index().num_roots() > cap {
                self.index = None;
                self.reuse.resets += 1;
            }
        }
        let needs_rebuild = match &self.index {
            Some(index) => summary.max_hop_limit > index.bound(),
            None => true,
        };
        if needs_rebuild {
            // Carry every previously indexed root into the rebuild so batches already
            // served stay covered (endpoint working sets repeat in serving workloads).
            // The carried roots overlap the batch's own endpoints heavily in exactly
            // those workloads, so the merged sets are deduplicated before they reach the
            // index build — duplicate roots would cost sort/partition work per batch.
            let mut sources = summary.sources.clone();
            let mut targets = summary.targets.clone();
            if let Some(old) = &self.index {
                sources.extend_from_slice(old.source_index().roots());
                targets.extend_from_slice(old.target_index().roots());
                sources.sort_unstable();
                sources.dedup();
                targets.sort_unstable();
                targets.dedup();
            }
            debug_assert!(
                sources.windows(2).all(|w| w[0] < w[1]),
                "duplicate source roots reach the index build"
            );
            debug_assert!(
                targets.windows(2).all(|w| w[0] < w[1]),
                "duplicate target roots reach the index build"
            );
            self.index = Some(BatchIndex::build(
                &self.graph,
                &sources,
                &targets,
                summary.max_hop_limit,
            ));
            self.reuse.rebuilds += 1;
        } else {
            let index = self.index.as_mut().expect("checked above");
            // Delete-dirtied roots repair lazily, here: the last point before the batch
            // consults the index for pruning (stale entries under-estimate distances,
            // which would break the Lemma 3.1 bound).
            if index.num_dirty() > 0 {
                let refreshed = index.flush_dirty(&self.graph);
                self.reuse.dirty_flushes += 1;
                self.reuse.dirty_roots_refreshed += refreshed;
            }
            let added = index.extend(&self.graph, &summary.sources, &summary.targets);
            if added == 0 {
                self.reuse.hits += 1;
            } else {
                self.reuse.extensions += 1;
                self.reuse.roots_added += added;
            }
        }
        start.elapsed()
    }

    /// Runs one batch, streaming every result path into a caller-provided sink.
    ///
    /// The reported `BuildIndex` stage time is the *incremental* index work this batch
    /// actually caused (zero-ish on a fully covered batch), not a from-scratch build.
    pub fn run_with_sink<S: PathSink>(&mut self, queries: &[PathQuery], sink: &mut S) -> EnumStats {
        if queries.is_empty() {
            sink.finish();
            return EnumStats::new(0);
        }
        let order = self.config.algorithm().search_order();
        let mode = self.config.expansion_mode();
        match self.config.algorithm() {
            // The real-time baseline: per-query index by definition, nothing cached.
            Algorithm::PathEnum => {
                PathEnum::new(order)
                    .with_mode(mode)
                    .run_batch(&self.graph, queries, sink)
            }
            algorithm => {
                let summary = BatchSummary::of(queries);
                let prep_time = self.ensure_index(&summary);
                let index = self.index.as_ref().expect("ensured above");
                let mut stats = match algorithm {
                    Algorithm::BasicEnum | Algorithm::BasicEnumPlus => BasicEnum::new(order)
                        .with_mode(mode)
                        .run_batch_with_index(&self.graph, index, queries, sink),
                    _ => BatchEnum::new(order, self.config.gamma())
                        .with_mode(mode)
                        .run_batch_with_index(&self.graph, index, queries, sink),
                };
                stats.add_stage(Stage::BuildIndex, prep_time);
                stats
            }
        }
    }

    /// Runs one batch on the cluster-sharded parallel executor, streaming every result
    /// path into a caller-provided sink.
    ///
    /// The cached index is prepared exactly as in [`Engine::run_with_sink`]; cluster
    /// evaluation then fans out over `parallelism` worker threads (see
    /// [`crate::parallel`]). Results are merged deterministically, so the delivered paths
    /// — per query, including order — are identical to the sequential run.
    /// `Parallelism::Fixed(1)` degenerates to a single worker.
    pub fn run_parallel_with_sink<S: PathSink>(
        &mut self,
        queries: &[PathQuery],
        parallelism: Parallelism,
        sink: &mut S,
    ) -> EnumStats {
        if queries.is_empty() {
            sink.finish();
            return EnumStats::new(0);
        }
        let order = self.config.algorithm().search_order();
        let mode = self.config.expansion_mode();
        match self.config.algorithm() {
            // The real-time baseline: per-query index by definition, nothing cached; the
            // per-query index builds simply spread over the workers.
            Algorithm::PathEnum => {
                run_pathenum_parallel(&self.graph, queries, order, mode, parallelism, sink)
            }
            algorithm => {
                let summary = BatchSummary::of(queries);
                let prep_time = self.ensure_index(&summary);
                let index = self.index.as_ref().expect("ensured above");
                let mut stats = match algorithm {
                    Algorithm::BasicEnum | Algorithm::BasicEnumPlus => {
                        ParallelBasicEnum::new(order, parallelism)
                            .with_mode(mode)
                            .run_batch_with_index(&self.graph, index, queries, sink)
                    }
                    _ => ParallelBatchEnum::new(order, self.config.gamma(), parallelism)
                        .with_mode(mode)
                        .with_split_policy(self.parallel_split)
                        .run_batch_with_index(&self.graph, index, queries, sink),
                };
                stats.add_stage(Stage::BuildIndex, prep_time);
                stats
            }
        }
    }

    /// Runs one batch on `threads` worker threads and collects every result path.
    ///
    /// Lossless with respect to [`Engine::run`]: same paths per query, same order.
    pub fn run_batch_parallel(
        &mut self,
        queries: &[PathQuery],
        parallelism: Parallelism,
    ) -> BatchOutcome {
        let mut sink = CollectSink::new(queries.len());
        let stats = self.run_parallel_with_sink(queries, parallelism, &mut sink);
        BatchOutcome {
            paths: sink.into_inner(),
            stats,
        }
    }

    /// Runs one batch and collects every result path.
    pub fn run(&mut self, queries: &[PathQuery]) -> BatchOutcome {
        let mut sink = CollectSink::new(queries.len());
        let stats = self.run_with_sink(queries, &mut sink);
        BatchOutcome {
            paths: sink.into_inner(),
            stats,
        }
    }

    /// Runs one batch counting results only.
    pub fn run_counting(&mut self, queries: &[PathQuery]) -> (Vec<u64>, EnumStats) {
        let mut sink = CountSink::new(queries.len());
        let stats = self.run_with_sink(queries, &mut sink);
        (sink.counts().to_vec(), stats)
    }

    /// Runs one batch of typed query requests against the cached index, returning one
    /// typed response per spec (see [`QuerySpec`] / [`crate::QueryResponse`]).
    ///
    /// A mixed-mode batch shares a single index (and clustering pass) exactly like a
    /// plain batch; the per-spec [`ResultMode`] only changes *when each query may stop*:
    ///
    /// * `Exists` is answered from the index distance without any enumeration,
    /// * `FirstK(k)` / path budgets terminate the query the moment the sink is
    ///   satisfied (streaming join under `BasicEnum*`, short-circuited join and dropped
    ///   cluster work under `BatchEnum*`),
    /// * `Count` / `Collect` run to completion.
    pub fn run_specs(&mut self, specs: &[QuerySpec]) -> SpecOutcome {
        if specs.is_empty() {
            return SpecOutcome {
                responses: Vec::new(),
                stats: EnumStats::new(0),
            };
        }
        match self.config.algorithm() {
            // The real-time baseline: per-query index by definition, nothing cached.
            Algorithm::PathEnum => self.config.run_specs(&self.graph, specs),
            _ => {
                let queries: Vec<PathQuery> = specs.iter().map(|s| s.query).collect();
                let summary = BatchSummary::of(&queries);
                let prep_time = self.ensure_index(&summary);
                let index = self.index.as_ref().expect("ensured above");
                let mut sink = SpecSink::new(specs);
                let mut stats =
                    run_specs_with_index(&self.config, &self.graph, index, specs, &mut sink);
                stats.add_stage(Stage::BuildIndex, prep_time);
                SpecOutcome {
                    responses: sink.into_responses(),
                    stats,
                }
            }
        }
    }

    /// [`Engine::run_specs`] on the cluster-sharded parallel executor.
    ///
    /// Responses are identical to the sequential [`Engine::run_specs`] — same paths, same
    /// order, same counts — for the same reason parallel plain batches are lossless:
    /// every query lives in exactly one similarity cluster, clusters are evaluated by the
    /// same sequential pipeline inside a worker (including each query's early
    /// termination), and results merge in deterministic cluster order. The configured
    /// [`Engine::set_parallel_cluster_cap`] applies as in [`Engine::run_parallel_with_sink`]
    /// (a cap trades the byte-identical order guarantee for parallel slack, exactly as
    /// documented there).
    pub fn run_specs_parallel(
        &mut self,
        specs: &[QuerySpec],
        parallelism: Parallelism,
    ) -> SpecOutcome {
        if specs.is_empty() {
            return SpecOutcome {
                responses: Vec::new(),
                stats: EnumStats::new(0),
            };
        }
        let order = self.config.algorithm().search_order();
        let mode = self.config.expansion_mode();
        match self.config.algorithm() {
            Algorithm::PathEnum => {
                let (responses, stats) =
                    run_specs_parallel_pathenum(&self.graph, specs, order, mode, parallelism);
                SpecOutcome { responses, stats }
            }
            algorithm => {
                let queries: Vec<PathQuery> = specs.iter().map(|s| s.query).collect();
                let summary = BatchSummary::of(&queries);
                let prep_time = self.ensure_index(&summary);
                let index = self.index.as_ref().expect("ensured above");

                // Exists fast path + dead-spec filtering, via the same helper as the
                // sequential pipeline; only the live remainder reaches the worker pool.
                let mut pre = SpecSink::new(specs);
                let (live, route) = filter_live_specs(index, &mut pre, specs);
                let shared = matches!(algorithm, Algorithm::BatchEnum | Algorithm::BatchEnumPlus);
                let (live_responses, mut stats) = run_specs_parallel_with_index(
                    &self.graph,
                    index,
                    &live,
                    order,
                    mode,
                    self.config.gamma(),
                    shared,
                    if shared {
                        self.parallel_split
                    } else {
                        SplitPolicy::Never
                    },
                    parallelism,
                );
                stats.add_stage(Stage::BuildIndex, prep_time);
                stats.num_queries = specs.len();
                let mut responses = pre.into_responses();
                for (idx, response) in route.into_iter().zip(live_responses) {
                    responses[idx] = response;
                }
                SpecOutcome { responses, stats }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::enumerate_reference;
    use hcsp_graph::generators::regular::{complete, grid};

    #[test]
    fn all_algorithms_agree_on_counts() {
        let g = grid(4, 4);
        let queries = vec![
            PathQuery::new(0u32, 15u32, 6),
            PathQuery::new(1u32, 15u32, 6),
            PathQuery::new(0u32, 11u32, 5),
        ];
        let reference: Vec<u64> = queries
            .iter()
            .map(|q| enumerate_reference(&g, q).len() as u64)
            .collect();
        for algorithm in Algorithm::ALL {
            let engine = BatchEngine::with_algorithm(algorithm);
            let (counts, stats) = engine.run_counting(&g, &queries);
            assert_eq!(counts, reference, "algorithm {algorithm}");
            assert_eq!(stats.num_queries, 3);
        }
    }

    #[test]
    fn builder_configures_algorithm_and_gamma() {
        let engine = BatchEngine::builder()
            .algorithm(Algorithm::BatchEnum)
            .gamma(0.25)
            .build();
        assert_eq!(engine.algorithm(), Algorithm::BatchEnum);
        assert!((engine.gamma() - 0.25).abs() < 1e-12);
        // Gamma is clamped into [0, 1].
        assert_eq!(BatchEngine::builder().gamma(7.0).build().gamma(), 1.0);
        let default_engine = BatchEngine::default();
        assert_eq!(default_engine.algorithm(), Algorithm::BatchEnumPlus);
        assert_eq!(default_engine.expansion_mode(), ExpansionMode::Frontier);
        let recursive = BatchEngine::builder()
            .expansion_mode(ExpansionMode::Recursive)
            .build();
        assert_eq!(recursive.expansion_mode(), ExpansionMode::Recursive);
    }

    #[test]
    fn expansion_modes_are_byte_identical_for_every_algorithm() {
        let g = grid(4, 4);
        let queries = vec![
            PathQuery::new(0u32, 15u32, 6),
            PathQuery::new(1u32, 15u32, 6),
            PathQuery::new(0u32, 11u32, 5),
        ];
        for algorithm in Algorithm::ALL {
            let frontier = BatchEngine::builder().algorithm(algorithm).build();
            let recursive = BatchEngine::builder()
                .algorithm(algorithm)
                .expansion_mode(ExpansionMode::Recursive)
                .build();
            let f = frontier.run(&g, &queries);
            let r = recursive.run(&g, &queries);
            assert_eq!(f.paths, r.paths, "{algorithm}: same paths, same order");
            assert_eq!(
                f.stats.counters, r.stats.counters,
                "{algorithm}: same counters"
            );
        }
    }

    #[test]
    fn run_collects_full_paths() {
        let g = complete(5);
        let queries = vec![PathQuery::new(0u32, 4u32, 3)];
        let outcome = BatchEngine::with_algorithm(Algorithm::BatchEnumPlus).run(&g, &queries);
        assert_eq!(outcome.count(0), enumerate_reference(&g, &queries[0]).len());
        assert_eq!(outcome.total(), outcome.count(0));
        for p in outcome.paths[0].iter() {
            assert_eq!(p.first(), Some(&hcsp_graph::VertexId(0)));
            assert_eq!(p.last(), Some(&hcsp_graph::VertexId(4)));
        }
    }

    #[test]
    fn reusable_engine_matches_one_shot_across_batches() {
        let g = grid(4, 4);
        let batches: Vec<Vec<PathQuery>> = vec![
            vec![
                PathQuery::new(0u32, 15u32, 6),
                PathQuery::new(1u32, 15u32, 6),
            ],
            // Same endpoints, smaller k: fully covered, no index work.
            vec![PathQuery::new(0u32, 15u32, 5)],
            // New endpoints at the same bound: incremental extension.
            vec![
                PathQuery::new(4u32, 11u32, 5),
                PathQuery::new(0u32, 15u32, 6),
            ],
            // Larger bound: rebuild.
            vec![PathQuery::new(0u32, 15u32, 8)],
        ];
        for algorithm in Algorithm::ALL {
            let mut engine = Engine::with_algorithm(g.clone(), algorithm);
            for batch in &batches {
                let (counts, _) = engine.run_counting(batch);
                let reference: Vec<u64> = batch
                    .iter()
                    .map(|q| enumerate_reference(&g, q).len() as u64)
                    .collect();
                assert_eq!(counts, reference, "{algorithm}");
            }
        }
    }

    #[test]
    fn engine_reuses_extends_and_rebuilds_the_index() {
        let g = grid(4, 4);
        let mut engine = Engine::new(g, BatchEngine::default());
        assert_eq!(engine.index_heap_bytes(), 0);

        engine.run(&[PathQuery::new(0u32, 15u32, 6)]);
        assert_eq!(
            engine.index_reuse(),
            IndexReuse {
                rebuilds: 1,
                ..Default::default()
            }
        );

        // Covered: hit, no BFS.
        engine.run(&[PathQuery::new(0u32, 15u32, 4)]);
        assert_eq!(engine.index_reuse().hits, 1);

        // New source at the same bound: extension, not rebuild.
        engine.run(&[PathQuery::new(1u32, 15u32, 6)]);
        assert_eq!(engine.index_reuse().rebuilds, 1);
        assert_eq!(engine.index_reuse().extensions, 1);
        assert_eq!(engine.index_reuse().roots_added, 1);

        // Bound grows: rebuild, carrying the old roots.
        engine.run(&[PathQuery::new(2u32, 15u32, 8)]);
        assert_eq!(engine.index_reuse().rebuilds, 2);
        // The carried roots mean the earlier shape is still a pure hit.
        engine.run(&[
            PathQuery::new(0u32, 15u32, 6),
            PathQuery::new(1u32, 15u32, 5),
        ]);
        assert_eq!(engine.index_reuse().hits, 2);
        assert!(engine.index_heap_bytes() > 0);

        engine.reset_index();
        assert_eq!(engine.index_heap_bytes(), 0);
        engine.run(&[PathQuery::new(0u32, 15u32, 6)]);
        assert_eq!(engine.index_reuse().rebuilds, 3);
    }

    #[test]
    fn apply_updates_matches_a_fresh_engine_after_every_step() {
        let g = grid(4, 4);
        let queries = vec![
            PathQuery::new(0u32, 15u32, 6),
            PathQuery::new(1u32, 15u32, 6),
            PathQuery::new(0u32, 11u32, 5),
        ];
        let steps: Vec<Vec<GraphUpdate>> = vec![
            vec![GraphUpdate::insert(0u32, 15u32)],
            vec![
                GraphUpdate::delete(0u32, 1u32),
                GraphUpdate::insert(5u32, 15u32),
            ],
            vec![
                GraphUpdate::delete(0u32, 15u32),
                GraphUpdate::delete(5u32, 15u32),
                GraphUpdate::insert(12u32, 1u32),
            ],
        ];
        let mut engine = Engine::new(g, BatchEngine::default());
        // Warm the cache so every step exercises real index maintenance.
        engine.run(&queries);
        for step in &steps {
            let summary = engine.apply_updates(step);
            assert_eq!(summary.applied, step.len());
            assert!(!summary.invalidated);
            let updated = engine.run(&queries);
            let mut fresh = Engine::new(engine.graph_arc(), BatchEngine::default());
            let reference = fresh.run(&queries);
            assert_eq!(updated.paths, reference.paths, "step {step:?}");
        }
        assert!(engine.index_reuse().update_refreshes >= steps.len());
        assert!(engine.index_reuse().dirty_flushes > 0);
        assert!(engine.index_reuse().dirty_roots_refreshed > 0);
    }

    #[test]
    fn apply_updates_without_a_cached_index_only_swaps_the_graph() {
        let g = complete(4);
        let mut engine = Engine::new(g, BatchEngine::default());
        let summary = engine.apply_updates(&[GraphUpdate::delete(0u32, 1u32)]);
        assert_eq!(summary.applied, 1);
        assert_eq!(summary.refreshed_entries, 0);
        assert_eq!(summary.dirty_roots, 0);
        assert_eq!(engine.index_reuse(), IndexReuse::default());
        assert!(!engine
            .graph()
            .has_edge(hcsp_graph::VertexId(0), hcsp_graph::VertexId(1)));
    }

    #[test]
    fn noop_and_cancelling_updates_leave_engine_untouched() {
        let g = complete(4);
        let mut engine = Engine::new(g.clone(), BatchEngine::default());
        engine.run(&[PathQuery::new(0u32, 3u32, 3)]);
        // Existing edge insert + absent edge delete: pure no-ops.
        let summary = engine.apply_updates(&[
            GraphUpdate::insert(0u32, 1u32),
            GraphUpdate::delete(1u32, 1u32),
        ]);
        assert_eq!(summary.applied, 0);
        assert_eq!(summary.ignored, 2);
        assert_eq!(summary.net_changes(), 0);
        // Insert-then-delete of the same absent edge cancels to a clean delta.
        let summary = engine.apply_updates(&[
            GraphUpdate::insert(1u32, 1u32),
            GraphUpdate::delete(1u32, 1u32),
        ]);
        assert_eq!(summary.applied, 2);
        assert_eq!(summary.net_changes(), 0);
        assert_eq!(engine.index_reuse().update_refreshes, 0);
        assert_eq!(*engine.graph(), g);
        assert_eq!(engine.apply_updates(&[]), UpdateSummary::default());
    }

    #[test]
    fn oversized_update_batches_invalidate_instead_of_refreshing() {
        let g = grid(4, 4);
        let mut engine = Engine::new(g, BatchEngine::default());
        engine.set_update_refresh_cap(Some(1));
        assert_eq!(engine.update_refresh_cap(), Some(1));
        let q = PathQuery::new(0u32, 15u32, 6);
        engine.run(&[q]);
        assert!(engine.index_heap_bytes() > 0);

        let summary = engine.apply_updates(&[
            GraphUpdate::insert(0u32, 15u32),
            GraphUpdate::insert(15u32, 0u32),
        ]);
        assert!(summary.invalidated);
        assert_eq!(engine.index_heap_bytes(), 0, "cache must be dropped");
        assert_eq!(engine.index_reuse().invalidations, 1);

        // Correctness is unaffected: the next batch rebuilds over the updated graph.
        let outcome = engine.run(&[q]);
        let mut fresh = Engine::new(engine.graph_arc(), BatchEngine::default());
        assert_eq!(outcome.paths, fresh.run(&[q]).paths);
        assert_eq!(engine.index_reuse().rebuilds, 2);
    }

    #[test]
    fn updates_can_grow_the_vertex_space() {
        let g = grid(3, 3);
        let mut engine = Engine::new(g, BatchEngine::default());
        engine.run(&[PathQuery::new(0u32, 8u32, 4)]);
        let summary = engine.apply_updates(&[
            GraphUpdate::insert(8u32, 9u32),
            GraphUpdate::insert(9u32, 0u32),
        ]);
        assert_eq!(summary.new_vertices, 1);
        assert_eq!(engine.graph().num_vertices(), 10);
        let q = PathQuery::new(0u32, 9u32, 5);
        let (counts, _) = engine.run_counting(&[q]);
        assert_eq!(
            counts[0],
            enumerate_reference(engine.graph(), &q).len() as u64
        );
    }

    #[test]
    fn delete_heavy_streams_coalesce_their_dirty_flushes() {
        let g = grid(4, 4);
        let mut engine = Engine::new(g, BatchEngine::default());
        let q = PathQuery::new(0u32, 15u32, 6);
        engine.run(&[q]);
        // Two consecutive delete batches with no query in between: marking happens
        // twice, but the (expensive) re-BFS runs once, at the next query.
        let s1 = engine.apply_updates(&[GraphUpdate::delete(0u32, 1u32)]);
        let s2 = engine.apply_updates(&[GraphUpdate::delete(14u32, 15u32)]);
        assert!(s1.dirty_roots + s2.dirty_roots > 0);
        assert_eq!(engine.index_reuse().dirty_flushes, 0, "repair is lazy");
        let outcome = engine.run(&[q]);
        assert_eq!(engine.index_reuse().dirty_flushes, 1);
        let mut fresh = Engine::new(engine.graph_arc(), BatchEngine::default());
        assert_eq!(outcome.paths, fresh.run(&[q]).paths);
    }

    #[test]
    fn parallel_runs_see_updates_too() {
        let g = grid(4, 4);
        let queries = vec![
            PathQuery::new(0u32, 15u32, 6),
            PathQuery::new(4u32, 11u32, 5),
        ];
        let mut engine = Engine::new(g, BatchEngine::default());
        engine.run_batch_parallel(&queries, Parallelism::Fixed(2));
        engine.apply_updates(&[
            GraphUpdate::insert(0u32, 15u32),
            GraphUpdate::delete(4u32, 5u32),
        ]);
        let parallel = engine.run_batch_parallel(&queries, Parallelism::Fixed(2));
        let mut fresh = Engine::new(engine.graph_arc(), BatchEngine::default());
        assert_eq!(parallel.paths, fresh.run(&queries).paths);
    }

    #[test]
    fn rebuild_dedups_carried_roots() {
        let g = grid(4, 4);
        let mut engine = Engine::new(g, BatchEngine::default());
        // Build, then grow the bound with a batch over the *same* endpoints: the carried
        // roots duplicate the batch summary's exactly.
        engine.run(&[PathQuery::new(0u32, 15u32, 5)]);
        engine.run(&[
            PathQuery::new(0u32, 15u32, 7),
            PathQuery::new(0u32, 15u32, 6),
        ]);
        assert_eq!(engine.index_reuse().rebuilds, 2);
        assert!(engine.index_heap_bytes() > 0);
        // The debug assertion inside `ensure_index` verifies no duplicate root reached
        // the build; the follow-up hit shows the merged coverage survived the dedup.
        let (counts, _) = engine.run_counting(&[PathQuery::new(0u32, 15u32, 7)]);
        assert_eq!(
            counts[0],
            enumerate_reference(engine.graph(), &PathQuery::new(0u32, 15u32, 7)).len() as u64
        );
        assert_eq!(engine.index_reuse().hits, 1);
    }

    #[test]
    fn root_cap_bounds_the_cached_index() {
        let g = grid(4, 4);
        let mut engine = Engine::new(g.clone(), BatchEngine::default());
        engine.set_index_root_cap(Some(4));
        assert_eq!(engine.index_root_cap(), Some(4));

        // Distinct endpoints per batch: the cache would grow without the cap.
        for q in (0..6).map(|i| PathQuery::new(i, 15u32 - i, 5)) {
            let (counts, _) = engine.run_counting(&[q]);
            assert_eq!(counts[0], enumerate_reference(&g, &q).len() as u64, "{q}");
        }
        assert!(
            engine.index_reuse().resets > 0,
            "the cap must have triggered"
        );
        // Correctness is unaffected; the cache never holds more than cap + one batch.
        let (counts, _) = engine.run_counting(&[PathQuery::new(0u32, 15u32, 6)]);
        assert_eq!(
            counts[0],
            enumerate_reference(&g, &PathQuery::new(0u32, 15u32, 6)).len() as u64
        );
    }

    #[test]
    fn run_batch_parallel_is_lossless_for_every_algorithm() {
        let g = grid(4, 4);
        let queries = vec![
            PathQuery::new(0u32, 15u32, 6),
            PathQuery::new(1u32, 15u32, 6),
            PathQuery::new(0u32, 14u32, 5),
            PathQuery::new(4u32, 11u32, 5),
        ];
        for algorithm in Algorithm::ALL {
            let mut sequential = Engine::with_algorithm(g.clone(), algorithm);
            let expected = sequential.run(&queries);
            for workers in [1, 2, 4] {
                let mut engine = Engine::with_algorithm(g.clone(), algorithm);
                let outcome = engine.run_batch_parallel(&queries, Parallelism::Fixed(workers));
                // Same paths per query, same order: byte-identical to sequential.
                assert_eq!(
                    outcome.paths, expected.paths,
                    "{algorithm} with {workers} workers"
                );
            }
        }
    }

    #[test]
    fn parallel_cluster_cap_keeps_counts_lossless() {
        let g = grid(4, 4);
        let queries = vec![
            PathQuery::new(0u32, 15u32, 6),
            PathQuery::new(1u32, 15u32, 6),
            PathQuery::new(0u32, 14u32, 5),
            PathQuery::new(4u32, 11u32, 5),
        ];
        let mut engine = Engine::new(g.clone(), BatchEngine::default());
        let expected = engine.run(&queries);
        let mut capped = Engine::new(g, BatchEngine::default());
        capped.set_parallel_cluster_cap(Some(1));
        assert_eq!(capped.parallel_cluster_cap(), Some(1));
        let outcome = capped.run_batch_parallel(&queries, Parallelism::Fixed(2));
        let expected_counts: Vec<usize> = expected.paths.iter().map(PathSet::len).collect();
        let counts: Vec<usize> = outcome.paths.iter().map(PathSet::len).collect();
        assert_eq!(counts, expected_counts);
        capped.set_parallel_cluster_cap(Some(0));
        assert_eq!(capped.parallel_cluster_cap(), None);
        assert_eq!(capped.parallel_split_policy(), SplitPolicy::Never);
        // The Auto policy stays lossless on counts too.
        capped.set_parallel_split_policy(SplitPolicy::Auto);
        assert_eq!(capped.parallel_split_policy(), SplitPolicy::Auto);
        assert_eq!(capped.parallel_cluster_cap(), None);
        let auto = capped.run_batch_parallel(&queries, Parallelism::Fixed(2));
        let auto_counts: Vec<usize> = auto.paths.iter().map(PathSet::len).collect();
        assert_eq!(auto_counts, expected_counts);
    }

    #[test]
    fn run_batch_parallel_reuses_the_cached_index() {
        let g = grid(4, 4);
        let mut engine = Engine::new(g, BatchEngine::default());
        engine.run_batch_parallel(&[PathQuery::new(0u32, 15u32, 6)], Parallelism::Fixed(2));
        assert_eq!(engine.index_reuse().rebuilds, 1);
        // Same shape again: pure hit, parallel or not.
        engine.run_batch_parallel(&[PathQuery::new(0u32, 15u32, 5)], Parallelism::Fixed(2));
        assert_eq!(engine.index_reuse().hits, 1);
        let outcome = engine.run_batch_parallel(&[], Parallelism::Fixed(2));
        assert_eq!(outcome.total(), 0);
    }

    #[test]
    fn engine_pathenum_bypasses_the_cache() {
        let g = complete(5);
        let mut engine = Engine::with_algorithm(g.clone(), Algorithm::PathEnum);
        let (counts, _) = engine.run_counting(&[PathQuery::new(0u32, 4u32, 3)]);
        assert_eq!(
            counts[0],
            enumerate_reference(&g, &PathQuery::new(0u32, 4u32, 3)).len() as u64
        );
        assert_eq!(engine.index_reuse(), IndexReuse::default());
    }

    #[test]
    fn engine_empty_batch_is_a_noop() {
        let g = complete(3);
        let mut engine = Engine::new(g, BatchEngine::default());
        let outcome = engine.run(&[]);
        assert_eq!(outcome.total(), 0);
        assert_eq!(engine.index_reuse(), IndexReuse::default());
        assert_eq!(engine.config().algorithm(), Algorithm::BatchEnumPlus);
        assert_eq!(engine.algorithm(), Algorithm::BatchEnumPlus);
        assert_eq!(engine.graph().num_vertices(), 3);
        assert_eq!(engine.graph_arc().num_vertices(), 3);
    }

    #[test]
    fn run_specs_modes_agree_with_full_enumeration() {
        let g = grid(4, 4);
        let queries = vec![
            PathQuery::new(0u32, 15u32, 6),
            PathQuery::new(1u32, 15u32, 6),
            PathQuery::new(0u32, 11u32, 5),
            PathQuery::new(15u32, 0u32, 4), // unreachable: grid edges only go right/down
        ];
        let reference: Vec<u64> = queries
            .iter()
            .map(|q| enumerate_reference(&g, q).len() as u64)
            .collect();
        for algorithm in Algorithm::ALL {
            let mut engine = Engine::with_algorithm(g.clone(), algorithm);
            let full = engine.run(&queries);

            let exists = engine.run_specs(
                &queries
                    .iter()
                    .map(|&q| QuerySpec::exists(q))
                    .collect::<Vec<_>>(),
            );
            let counts = engine.run_specs(
                &queries
                    .iter()
                    .map(|&q| QuerySpec::count(q))
                    .collect::<Vec<_>>(),
            );
            let first2 = engine.run_specs(
                &queries
                    .iter()
                    .map(|&q| QuerySpec::first_k(q, 2))
                    .collect::<Vec<_>>(),
            );
            let collect = engine.run_specs(
                &queries
                    .iter()
                    .map(|&q| QuerySpec::collect(q))
                    .collect::<Vec<_>>(),
            );

            for (i, &expected) in reference.iter().enumerate() {
                assert_eq!(
                    exists.responses[i],
                    crate::QueryResponse::Exists(expected > 0),
                    "{algorithm} exists q{i}"
                );
                assert_eq!(
                    counts.responses[i],
                    crate::QueryResponse::Count(expected),
                    "{algorithm} count q{i}"
                );
                // FirstK is a prefix of Collect, which equals the plain run.
                let collected = collect.responses[i].paths().unwrap();
                assert_eq!(collected, &full.paths[i], "{algorithm} collect q{i}");
                let first = first2.responses[i].paths().unwrap();
                assert_eq!(
                    first.len() as u64,
                    expected.min(2),
                    "{algorithm} firstk q{i}"
                );
                for (j, p) in first.iter().enumerate() {
                    assert_eq!(p, collected.get(j), "{algorithm} firstk prefix q{i}");
                }
            }
        }
    }

    #[test]
    fn exists_probes_skip_enumeration_on_shared_index_algorithms() {
        let g = grid(4, 4);
        let specs: Vec<QuerySpec> = (0..4)
            .map(|i| QuerySpec::exists(PathQuery::new(i, 15u32, 6)))
            .collect();
        for algorithm in [Algorithm::BasicEnumPlus, Algorithm::BatchEnumPlus] {
            let mut engine = Engine::with_algorithm(g.clone(), algorithm);
            let outcome = engine.run_specs(&specs);
            assert!(outcome.responses.iter().all(|r| r.exists()), "{algorithm}");
            assert_eq!(
                outcome.stats.counters.expanded_vertices, 0,
                "{algorithm}: exists probes must be answered from the index"
            );
            assert_eq!(outcome.stats.counters.produced_paths, 0);
        }
    }

    #[test]
    fn run_specs_parallel_matches_sequential_for_mixed_modes() {
        let g = grid(4, 4);
        let queries = [
            PathQuery::new(0u32, 15u32, 6),
            PathQuery::new(1u32, 15u32, 6),
            PathQuery::new(0u32, 14u32, 5),
            PathQuery::new(4u32, 11u32, 5),
            PathQuery::new(2u32, 15u32, 6),
        ];
        let specs = vec![
            QuerySpec::exists(queries[0]),
            QuerySpec::count(queries[1]),
            QuerySpec::first_k(queries[2], 3),
            QuerySpec::collect(queries[3]),
            QuerySpec::count(queries[4]).with_path_budget(5),
        ];
        for algorithm in Algorithm::ALL {
            let mut sequential = Engine::with_algorithm(g.clone(), algorithm);
            let expected = sequential.run_specs(&specs);
            for workers in [1, 2, 4] {
                let mut engine = Engine::with_algorithm(g.clone(), algorithm);
                let outcome = engine.run_specs_parallel(&specs, Parallelism::Fixed(workers));
                assert_eq!(
                    outcome.responses, expected.responses,
                    "{algorithm} with {workers} workers"
                );
            }
        }
    }

    #[test]
    fn spec_batches_reuse_the_cached_index() {
        let g = grid(4, 4);
        let mut engine = Engine::new(g, BatchEngine::default());
        engine.run_specs(&[QuerySpec::collect(PathQuery::new(0u32, 15u32, 6))]);
        assert_eq!(engine.index_reuse().rebuilds, 1);
        // A later exists probe over the same shape is a pure index hit — and free.
        let outcome = engine.run_specs(&[QuerySpec::exists(PathQuery::new(0u32, 15u32, 6))]);
        assert_eq!(engine.index_reuse().hits, 1);
        assert!(outcome.responses[0].exists());
        assert_eq!(outcome.stats.counters.expanded_vertices, 0);
        // Empty spec batches are no-ops.
        assert!(engine.run_specs(&[]).responses.is_empty());
        assert!(engine
            .run_specs_parallel(&[], Parallelism::Fixed(2))
            .responses
            .is_empty());
    }

    #[test]
    fn path_budgets_cap_every_mode() {
        let g = complete(6);
        let q = PathQuery::new(0u32, 5u32, 4);
        let total = enumerate_reference(&g, &q).len() as u64;
        assert!(total > 4);
        let mut engine = Engine::new(g, BatchEngine::default());
        let outcome = engine.run_specs(&[
            QuerySpec::count(q).with_path_budget(3),
            QuerySpec::collect(q).with_path_budget(2),
            QuerySpec::first_k(q, 10).with_path_budget(1),
            QuerySpec::count(q),
        ]);
        assert_eq!(outcome.responses[0], crate::QueryResponse::Count(3));
        assert_eq!(outcome.responses[1].count(), Some(2));
        assert_eq!(outcome.responses[2].count(), Some(1));
        assert_eq!(outcome.responses[3], crate::QueryResponse::Count(total));
    }

    #[test]
    fn one_shot_engine_run_specs_matches_the_reusable_engine() {
        let g = grid(4, 4);
        let specs = vec![
            QuerySpec::exists(PathQuery::new(0u32, 15u32, 6)),
            QuerySpec::first_k(PathQuery::new(1u32, 15u32, 6), 2),
            QuerySpec::count(PathQuery::new(0u32, 11u32, 5)),
        ];
        for algorithm in Algorithm::ALL {
            let one_shot = BatchEngine::with_algorithm(algorithm).run_specs(&g, &specs);
            let mut reusable = Engine::with_algorithm(g.clone(), algorithm);
            assert_eq!(
                one_shot.responses,
                reusable.run_specs(&specs).responses,
                "{algorithm}"
            );
        }
        assert!(BatchEngine::default()
            .run_specs(&g, &[])
            .responses
            .is_empty());
    }

    #[test]
    fn algorithm_metadata() {
        assert_eq!(Algorithm::BatchEnumPlus.to_string(), "BatchEnum+");
        assert_eq!(Algorithm::PathEnum.search_order(), SearchOrder::VertexId);
        assert_eq!(
            Algorithm::BasicEnumPlus.search_order(),
            SearchOrder::DistanceThenDegree
        );
        assert!(Algorithm::BatchEnum.shares_computation());
        assert!(!Algorithm::BasicEnum.shares_computation());
        assert_eq!(Algorithm::ALL.len(), 5);
    }
}
