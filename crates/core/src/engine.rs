//! The user-facing batch engine: algorithm selection, configuration, and result assembly.
//!
//! The engine wraps the five algorithms compared throughout the paper's evaluation
//! (`PathEnum`, `BasicEnum`, `BasicEnum+`, `BatchEnum`, `BatchEnum+`) behind one entry
//! point, so examples, integration tests, and the experiment harness all drive the exact
//! same code paths.

use crate::basic_enum::BasicEnum;
use crate::batch_enum::{BatchEnum, DEFAULT_GAMMA};
use crate::path::PathSet;
use crate::pathenum::PathEnum;
use crate::query::PathQuery;
use crate::search_order::SearchOrder;
use crate::sink::{CollectSink, CountSink, PathSink};
use crate::stats::EnumStats;
use hcsp_graph::DiGraph;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The algorithms evaluated in the paper (§V "Algorithms").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// State-of-the-art single-query algorithm, one isolated run per query.
    PathEnum,
    /// Algorithm 1: shared multi-source BFS index, independent per-query enumeration.
    BasicEnum,
    /// `BasicEnum` with the optimized search order.
    BasicEnumPlus,
    /// Algorithm 4: clustering + HC-s path query sharing.
    BatchEnum,
    /// `BatchEnum` with the optimized search order.
    BatchEnumPlus,
}

impl Algorithm {
    /// All algorithms in the order the paper's figures list them.
    pub const ALL: [Algorithm; 5] = [
        Algorithm::PathEnum,
        Algorithm::BasicEnum,
        Algorithm::BasicEnumPlus,
        Algorithm::BatchEnum,
        Algorithm::BatchEnumPlus,
    ];

    /// The search order the algorithm uses.
    pub fn search_order(self) -> SearchOrder {
        match self {
            Algorithm::PathEnum | Algorithm::BasicEnum | Algorithm::BatchEnum => {
                SearchOrder::VertexId
            }
            Algorithm::BasicEnumPlus | Algorithm::BatchEnumPlus => SearchOrder::DistanceThenDegree,
        }
    }

    /// Whether the algorithm performs HC-s path query sharing.
    pub fn shares_computation(self) -> bool {
        matches!(self, Algorithm::BatchEnum | Algorithm::BatchEnumPlus)
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Algorithm::PathEnum => "PathEnum",
            Algorithm::BasicEnum => "BasicEnum",
            Algorithm::BasicEnumPlus => "BasicEnum+",
            Algorithm::BatchEnum => "BatchEnum",
            Algorithm::BatchEnumPlus => "BatchEnum+",
        };
        f.write_str(name)
    }
}

/// Builder-configured batch query engine.
#[derive(Debug, Clone, Copy)]
pub struct BatchEngine {
    algorithm: Algorithm,
    gamma: f64,
}

impl Default for BatchEngine {
    fn default() -> Self {
        BatchEngine {
            algorithm: Algorithm::BatchEnumPlus,
            gamma: DEFAULT_GAMMA,
        }
    }
}

/// Builder for [`BatchEngine`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchEngineBuilder {
    algorithm: Option<Algorithm>,
    gamma: Option<f64>,
}

impl BatchEngineBuilder {
    /// Selects the algorithm (default: `BatchEnum+`).
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = Some(algorithm);
        self
    }

    /// Sets the clustering threshold γ (default 0.5; only used by the sharing algorithms).
    pub fn gamma(mut self, gamma: f64) -> Self {
        self.gamma = Some(gamma);
        self
    }

    /// Finalises the engine.
    pub fn build(self) -> BatchEngine {
        BatchEngine {
            algorithm: self.algorithm.unwrap_or(Algorithm::BatchEnumPlus),
            gamma: self.gamma.unwrap_or(DEFAULT_GAMMA).clamp(0.0, 1.0),
        }
    }
}

/// The outcome of a batch run when results are collected.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// The result paths of every query, in batch order.
    pub paths: Vec<PathSet>,
    /// Run statistics (stage timings, counters, clustering info).
    pub stats: EnumStats,
}

impl BatchOutcome {
    /// Number of result paths of query `i`.
    pub fn count(&self, i: usize) -> usize {
        self.paths[i].len()
    }

    /// Total number of result paths across the batch.
    pub fn total(&self) -> usize {
        self.paths.iter().map(PathSet::len).sum()
    }
}

impl BatchEngine {
    /// Starts building an engine.
    pub fn builder() -> BatchEngineBuilder {
        BatchEngineBuilder::default()
    }

    /// Convenience constructor with an explicit algorithm and the default γ.
    pub fn with_algorithm(algorithm: Algorithm) -> Self {
        BatchEngine {
            algorithm,
            gamma: DEFAULT_GAMMA,
        }
    }

    /// The configured algorithm.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The configured clustering threshold.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Runs the batch, streaming every result path into a caller-provided sink.
    pub fn run_with_sink<S: PathSink>(
        &self,
        graph: &DiGraph,
        queries: &[PathQuery],
        sink: &mut S,
    ) -> EnumStats {
        match self.algorithm {
            Algorithm::PathEnum => {
                PathEnum::new(self.algorithm.search_order()).run_batch(graph, queries, sink)
            }
            Algorithm::BasicEnum | Algorithm::BasicEnumPlus => {
                BasicEnum::new(self.algorithm.search_order()).run_batch(graph, queries, sink)
            }
            Algorithm::BatchEnum | Algorithm::BatchEnumPlus => {
                BatchEnum::new(self.algorithm.search_order(), self.gamma)
                    .run_batch(graph, queries, sink)
            }
        }
    }

    /// Runs the batch and collects every result path.
    pub fn run(&self, graph: &DiGraph, queries: &[PathQuery]) -> BatchOutcome {
        let mut sink = CollectSink::new(queries.len());
        let stats = self.run_with_sink(graph, queries, &mut sink);
        BatchOutcome {
            paths: sink.into_inner(),
            stats,
        }
    }

    /// Runs the batch counting results only (the mode used by the timing experiments,
    /// where materialising every path of every query would dominate memory).
    pub fn run_counting(&self, graph: &DiGraph, queries: &[PathQuery]) -> (Vec<u64>, EnumStats) {
        let mut sink = CountSink::new(queries.len());
        let stats = self.run_with_sink(graph, queries, &mut sink);
        (sink.counts().to_vec(), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::enumerate_reference;
    use hcsp_graph::generators::regular::{complete, grid};

    #[test]
    fn all_algorithms_agree_on_counts() {
        let g = grid(4, 4);
        let queries = vec![
            PathQuery::new(0u32, 15u32, 6),
            PathQuery::new(1u32, 15u32, 6),
            PathQuery::new(0u32, 11u32, 5),
        ];
        let reference: Vec<u64> = queries
            .iter()
            .map(|q| enumerate_reference(&g, q).len() as u64)
            .collect();
        for algorithm in Algorithm::ALL {
            let engine = BatchEngine::with_algorithm(algorithm);
            let (counts, stats) = engine.run_counting(&g, &queries);
            assert_eq!(counts, reference, "algorithm {algorithm}");
            assert_eq!(stats.num_queries, 3);
        }
    }

    #[test]
    fn builder_configures_algorithm_and_gamma() {
        let engine = BatchEngine::builder()
            .algorithm(Algorithm::BatchEnum)
            .gamma(0.25)
            .build();
        assert_eq!(engine.algorithm(), Algorithm::BatchEnum);
        assert!((engine.gamma() - 0.25).abs() < 1e-12);
        // Gamma is clamped into [0, 1].
        assert_eq!(BatchEngine::builder().gamma(7.0).build().gamma(), 1.0);
        let default_engine = BatchEngine::default();
        assert_eq!(default_engine.algorithm(), Algorithm::BatchEnumPlus);
    }

    #[test]
    fn run_collects_full_paths() {
        let g = complete(5);
        let queries = vec![PathQuery::new(0u32, 4u32, 3)];
        let outcome = BatchEngine::with_algorithm(Algorithm::BatchEnumPlus).run(&g, &queries);
        assert_eq!(outcome.count(0), enumerate_reference(&g, &queries[0]).len());
        assert_eq!(outcome.total(), outcome.count(0));
        for p in outcome.paths[0].iter() {
            assert_eq!(p.first(), Some(&hcsp_graph::VertexId(0)));
            assert_eq!(p.last(), Some(&hcsp_graph::VertexId(4)));
        }
    }

    #[test]
    fn algorithm_metadata() {
        assert_eq!(Algorithm::BatchEnumPlus.to_string(), "BatchEnum+");
        assert_eq!(Algorithm::PathEnum.search_order(), SearchOrder::VertexId);
        assert_eq!(
            Algorithm::BasicEnumPlus.search_order(),
            SearchOrder::DistanceThenDegree
        );
        assert!(Algorithm::BatchEnum.shares_computation());
        assert!(!Algorithm::BasicEnum.shares_computation());
        assert_eq!(Algorithm::ALL.len(), 5);
    }
}
