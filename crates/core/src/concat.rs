//! The path concatenation operator `⊕` (Definition 3.1), batch and streaming.
//!
//! The bidirectional search produces a set of forward prefixes `P_f` (paths from `s` on
//! `G`) and a set of backward prefixes `P_b` (paths from `t` on `G^r`). `P_f ⊕ P_b` joins
//! the two sets on their shared end vertex and keeps exactly the simple joined paths
//! within the hop constraint.
//!
//! ## Canonical split
//!
//! Both halves contain prefixes of *every* length up to their budget, so a single result
//! path of length `L` could be reassembled from several `(prefix, suffix)` splits. To
//! report every HC-s-t path exactly once, the join only accepts the canonical split in
//! which the forward half carries `⌈L/2⌉` hops — i.e. `forward.hops() − backward.hops() ∈
//! {0, 1}`. Every valid result path has such a split within the budgets `⌈k/2⌉ / ⌊k/2⌋`,
//! and it has only one.
//!
//! ## Streaming form
//!
//! [`concatenate_scratch`] is the batch form: both halves fully materialised, then
//! joined. It is built from two streaming primitives — [`prepare_suffixes`] (index the
//! backward side once) and [`join_prefix`] (join *one* forward prefix) — which the
//! early-terminating execution path of [`crate::pathenum::PathEnum`] calls directly from
//! inside the forward DFS: each discovered prefix is joined immediately, and the
//! [`SinkFlow`] verdict of the sink can abort the search *before* the forward half is
//! ever materialised. Because the batch form iterates forward prefixes in exactly the
//! DFS discovery order, both forms emit the same paths in the same order.

use crate::buffers::JoinScratch;
use crate::path::{vertices_are_distinct, Path, PathSet};
use crate::sink::SinkFlow;
use hcsp_graph::VertexId;

/// Statistics of one join, used by instrumentation and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinStats {
    /// Number of `(forward, backward)` candidate pairs that shared a join vertex.
    pub candidate_pairs: usize,
    /// Candidates rejected because the split was not canonical or exceeded the hop limit.
    pub rejected_split: usize,
    /// Candidates rejected because the joined path repeated a vertex.
    pub rejected_not_simple: usize,
    /// Number of result paths produced.
    pub produced: usize,
}

/// Indexes the backward prefix set for joining: builds the scratch's CSR-style bucket
/// table — sorted distinct end vertices, and per end vertex one contiguous run of
/// `(path index, hops)` entries, index-ascending (which pins the emission order).
///
/// Precomputing the hop count per entry lets [`join_prefix`] sweep a bucket without
/// touching the suffix storage for candidates the split test rejects.
pub fn prepare_suffixes(backward: &PathSet, scratch: &mut JoinScratch) {
    let JoinScratch {
        ends,
        offsets,
        entries,
        pairs,
        ..
    } = scratch;
    pairs.clear();
    for (idx, suffix) in backward.iter().enumerate() {
        // lint:allow(panic-free-hot-path) PathSet stores no empty paths: every entry has a last vertex
        let join_vertex = *suffix.last().expect("paths are non-empty");
        pairs.push((join_vertex, idx as u32));
    }
    pairs.sort_unstable();
    ends.clear();
    offsets.clear();
    entries.clear();
    for &(end, idx) in pairs.iter() {
        if ends.last() != Some(&end) {
            ends.push(end);
            offsets.push(entries.len() as u32);
        }
        let hops = (backward.get(idx as usize).len() - 1) as u32;
        entries.push((idx, hops));
    }
    offsets.push(entries.len() as u32);
}

/// Joins one forward prefix against a backward set prepared by [`prepare_suffixes`],
/// emitting every canonical, simple, in-budget joined path.
///
/// `emit` returns a [`SinkFlow`] verdict; the first non-`Continue` verdict aborts the
/// remaining candidates of this prefix and is returned to the caller (which typically
/// aborts the forward DFS in turn). Returns `Continue` when the prefix was exhausted.
pub fn join_prefix<F>(
    prefix: &[VertexId],
    backward: &PathSet,
    hop_limit: u32,
    scratch: &mut JoinScratch,
    stats: &mut JoinStats,
    mut emit: F,
) -> SinkFlow
where
    F: FnMut(&[VertexId]) -> SinkFlow,
{
    let JoinScratch {
        ends,
        offsets,
        entries,
        assembled,
        ..
    } = scratch;
    // lint:allow(panic-free-hot-path) the DFS always passes a prefix with at least the source vertex
    let join_vertex = *prefix.last().expect("paths are non-empty");
    let Ok(bucket) = ends.binary_search(&join_vertex) else {
        return SinkFlow::Continue;
    };
    // lint:allow(panic-free-hot-path) bucket < ends.len() = offsets.len() - 1; offsets delimit entries
    let run = &entries[offsets[bucket] as usize..offsets[bucket + 1] as usize];
    stats.candidate_pairs += run.len();
    let forward_hops = (prefix.len() - 1) as u32;
    for &(suffix_idx, backward_hops) in run {
        let total = forward_hops + backward_hops;
        // `fwd − bwd ∈ {0, 1}` as a single unsigned compare: a wrapped (negative)
        // difference lands far above 1.
        let canonical = forward_hops.wrapping_sub(backward_hops) <= 1;
        if !canonical || total > hop_limit {
            stats.rejected_split += 1;
            continue;
        }
        let suffix = backward.get(suffix_idx as usize);
        assembled.clear();
        assembled.extend_from_slice(prefix);
        // The suffix is oriented from t towards the join vertex; skip the shared join
        // vertex and append the rest reversed.
        // lint:allow(panic-free-hot-path) suffix.len() >= 1 (no empty paths), so the range end is in bounds
        assembled.extend(suffix[..suffix.len() - 1].iter().rev().copied());
        if !vertices_are_distinct(assembled) {
            stats.rejected_not_simple += 1;
            continue;
        }
        stats.produced += 1;
        let flow = emit(assembled);
        if !flow.is_continue() {
            return flow;
        }
    }
    SinkFlow::Continue
}

/// Joins forward and backward prefix sets into complete HC-s-t paths.
///
/// * `forward` — paths starting at `s`, oriented along `G` (first vertex is `s`).
/// * `backward` — paths starting at `t`, oriented along `G^r` (first vertex is `t`); their
///   reversal is the suffix of the result path.
/// * `hop_limit` — the query's hop constraint `k`.
///
/// Every produced path starts at `s`, ends at `t`, is simple, and has at most `hop_limit`
/// hops. Paths are emitted through `emit`, which receives the full vertex sequence (and
/// cannot terminate the join early — see [`concatenate_scratch`] for that).
pub fn concatenate_with<F>(
    forward: &PathSet,
    backward: &PathSet,
    hop_limit: u32,
    mut emit: F,
) -> JoinStats
where
    F: FnMut(&[VertexId]),
{
    let mut scratch = JoinScratch::default();
    concatenate_scratch(forward, backward, hop_limit, &mut scratch, |path| {
        emit(path);
        SinkFlow::Continue
    })
}

/// [`concatenate_with`] with caller-owned scratch and an early-terminating emitter: the
/// join-vertex table and the assembly buffer are reused across calls, and the first
/// non-`Continue` [`SinkFlow`] verdict from `emit` aborts the remaining join work (the
/// sink has everything it needs for this query).
///
/// The backward side is indexed once into a CSR-style bucket table keyed by end vertex;
/// each forward prefix then binary-searches its join-vertex bucket and sweeps one
/// contiguous run, in the forward set's insertion (= DFS discovery) order.
pub fn concatenate_scratch<F>(
    forward: &PathSet,
    backward: &PathSet,
    hop_limit: u32,
    scratch: &mut JoinScratch,
    mut emit: F,
) -> JoinStats
where
    F: FnMut(&[VertexId]) -> SinkFlow,
{
    let mut stats = JoinStats::default();
    if forward.is_empty() || backward.is_empty() {
        return stats;
    }
    prepare_suffixes(backward, scratch);
    for prefix in forward.iter() {
        let flow = join_prefix(prefix, backward, hop_limit, scratch, &mut stats, &mut emit);
        if !flow.is_continue() {
            break;
        }
    }
    stats
}

/// Convenience wrapper collecting the joined paths into a [`PathSet`].
pub fn concatenate(forward: &PathSet, backward: &PathSet, hop_limit: u32) -> (PathSet, JoinStats) {
    let mut out = PathSet::new();
    let stats = concatenate_with(forward, backward, hop_limit, |p| out.push_slice(p));
    (out, stats)
}

/// Convenience wrapper returning owned [`Path`] values (tests and examples).
pub fn concatenate_to_paths(forward: &PathSet, backward: &PathSet, hop_limit: u32) -> Vec<Path> {
    let (set, _) = concatenate(forward, backward, hop_limit);
    set.to_paths()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u32) -> VertexId {
        VertexId(x)
    }

    fn set(paths: &[&[u32]]) -> PathSet {
        let mut s = PathSet::new();
        for p in paths {
            let vs: Vec<VertexId> = p.iter().map(|&x| VertexId(x)).collect();
            s.push_slice(&vs);
        }
        s
    }

    #[test]
    fn joins_on_shared_end_vertex() {
        // Forward prefixes from s = 0, backward prefixes from t = 5 (in Gr orientation).
        let forward = set(&[&[0], &[0, 1], &[0, 1, 2]]);
        let backward = set(&[&[5], &[5, 4], &[5, 4, 2]]);
        let (result, stats) = concatenate(&forward, &backward, 4);
        let paths = result.to_paths();
        // Canonical splits: (0,1,2)+(5,4,2) -> 0,1,2,4,5 with fwd=2,bwd=2.
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].vertices(), &[v(0), v(1), v(2), v(4), v(5)]);
        assert_eq!(stats.produced, 1);
    }

    #[test]
    fn canonical_split_prevents_duplicates() {
        // Path 0 -> 1 -> 2 -> 3 of length 3 could be split (0,1)+(3,2,1) or (0,1,2)+(3,2).
        let forward = set(&[&[0], &[0, 1], &[0, 1, 2]]);
        let backward = set(&[&[3], &[3, 2], &[3, 2, 1]]);
        let paths = concatenate_to_paths(&forward, &backward, 3);
        assert_eq!(
            paths.len(),
            1,
            "each result path must be produced exactly once"
        );
        assert_eq!(paths[0].vertices(), &[v(0), v(1), v(2), v(3)]);
    }

    #[test]
    fn hop_limit_filters_long_paths() {
        let forward = set(&[&[0, 1, 2]]);
        let backward = set(&[&[5, 4, 2]]);
        assert_eq!(concatenate_to_paths(&forward, &backward, 4).len(), 1);
        assert_eq!(concatenate_to_paths(&forward, &backward, 3).len(), 0);
    }

    #[test]
    fn non_simple_joins_are_rejected() {
        // Forward 0 -> 1 -> 2, backward (from t=3) 3 -> 1 -> 2: joined path repeats 1.
        let forward = set(&[&[0, 1, 2]]);
        let backward = set(&[&[3, 1, 2]]);
        let (result, stats) = concatenate(&forward, &backward, 5);
        assert!(result.is_empty());
        assert_eq!(stats.rejected_not_simple, 1);
    }

    #[test]
    fn zero_hop_halves_support_short_paths() {
        // Path of length 1: s = 0, t = 1. Forward (0,1) joins with backward (1).
        let forward = set(&[&[0], &[0, 1]]);
        let backward = set(&[&[1]]);
        let paths = concatenate_to_paths(&forward, &backward, 1);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].vertices(), &[v(0), v(1)]);
    }

    #[test]
    fn trivial_query_s_equals_t() {
        let forward = set(&[&[7]]);
        let backward = set(&[&[7]]);
        let paths = concatenate_to_paths(&forward, &backward, 3);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].vertices(), &[v(7)]);
    }

    #[test]
    fn empty_sides_produce_nothing() {
        let forward = set(&[&[0, 1]]);
        let empty = PathSet::new();
        assert_eq!(concatenate(&forward, &empty, 5).0.len(), 0);
        assert_eq!(concatenate(&empty, &forward, 5).0.len(), 0);
    }

    #[test]
    fn scratch_join_matches_fresh_join_across_reuses() {
        let mut scratch = JoinScratch::default();
        let cases: Vec<(PathSet, PathSet, u32)> = vec![
            (
                set(&[&[0], &[0, 1], &[0, 1, 2]]),
                set(&[&[5], &[5, 4], &[5, 4, 2]]),
                4,
            ),
            (
                set(&[&[0], &[0, 1], &[0, 1, 2]]),
                set(&[&[3], &[3, 2], &[3, 2, 1]]),
                3,
            ),
            (set(&[&[0, 1], &[0, 2, 1]]), set(&[&[3, 1], &[3, 4, 1]]), 10),
        ];
        for (forward, backward, k) in cases {
            let mut fresh = Vec::new();
            let fresh_stats = concatenate_with(&forward, &backward, k, |p| fresh.push(p.to_vec()));
            let mut reused = Vec::new();
            // Scratch reused across joins: identical paths in identical order.
            let reused_stats = concatenate_scratch(&forward, &backward, k, &mut scratch, |p| {
                reused.push(p.to_vec());
                SinkFlow::Continue
            });
            assert_eq!(reused, fresh);
            assert_eq!(reused_stats, fresh_stats);
        }
    }

    #[test]
    fn streaming_prefix_join_matches_the_batch_join() {
        let forward = set(&[&[0], &[0, 1], &[0, 1, 2], &[0, 2], &[0, 2, 1]]);
        let backward = set(&[&[3], &[3, 2], &[3, 1], &[3, 4, 1], &[3, 4, 2]]);
        let mut batch = Vec::new();
        let batch_stats = concatenate_with(&forward, &backward, 10, |p| batch.push(p.to_vec()));

        // Streaming: prepare once, join prefix by prefix in forward insertion order.
        let mut scratch = JoinScratch::default();
        prepare_suffixes(&backward, &mut scratch);
        let mut streamed = Vec::new();
        let mut stats = JoinStats::default();
        for prefix in forward.iter() {
            let flow = join_prefix(prefix, &backward, 10, &mut scratch, &mut stats, |p| {
                streamed.push(p.to_vec());
                SinkFlow::Continue
            });
            assert!(flow.is_continue());
        }
        assert_eq!(streamed, batch, "same paths in the same order");
        assert_eq!(stats, batch_stats);
    }

    #[test]
    fn early_verdicts_abort_the_join() {
        let forward = set(&[&[0, 1], &[0, 2, 1]]);
        let backward = set(&[&[3, 1], &[3, 4, 1]]);
        // Full join yields several paths; stop after the first.
        let mut scratch = JoinScratch::default();
        let mut seen = 0usize;
        let stats = concatenate_scratch(&forward, &backward, 10, &mut scratch, |_p| {
            seen += 1;
            SinkFlow::SkipQuery
        });
        assert_eq!(seen, 1);
        assert_eq!(stats.produced, 1);
        let (full, full_stats) = concatenate(&forward, &backward, 10);
        assert!(full.len() > 1);
        assert!(stats.candidate_pairs < full_stats.candidate_pairs);
    }

    #[test]
    fn stats_count_candidates_and_rejections() {
        let forward = set(&[&[0, 1], &[0, 2, 1]]);
        let backward = set(&[&[3, 1], &[3, 4, 1]]);
        let (_, stats) = concatenate(&forward, &backward, 10);
        assert_eq!(stats.candidate_pairs, 4);
        assert_eq!(
            stats.produced + stats.rejected_split + stats.rejected_not_simple,
            4
        );
    }
}
