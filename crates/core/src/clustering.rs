//! `ClusterQuery` — hierarchical query clustering (Algorithm 2, Phase 1 of §IV-B).
//!
//! Queries are grouped agglomeratively: starting from singleton clusters, the pair of
//! clusters with the highest group similarity δ (Definition 4.6) is merged repeatedly
//! until no pair exceeds the threshold γ. Queries inside one cluster then go through
//! common HC-s path query detection together; queries in different clusters share nothing.

use crate::query::QueryId;
use crate::similarity::{group_similarity, SimilarityMatrix};

/// The result of clustering: each inner vector holds the query ids of one cluster.
pub type Clusters = Vec<Vec<QueryId>>;

/// Runs Algorithm 2 with threshold `gamma` over a precomputed similarity matrix.
///
/// The implementation is the textbook agglomerative procedure of the paper (quadratic in
/// the number of clusters per merge). Query batches in the evaluation have at most a few
/// hundred queries, for which this is far below the enumeration cost — which is exactly
/// the claim Exp-3 verifies.
pub fn cluster_queries(matrix: &SimilarityMatrix, gamma: f64) -> Clusters {
    let n = matrix.len();
    let mut clusters: Clusters = (0..n).map(|q| vec![q]).collect();
    if n <= 1 {
        return clusters;
    }
    loop {
        // Find the most similar pair of current clusters (lines 3-7).
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..clusters.len() {
            for j in (i + 1)..clusters.len() {
                let sim = group_similarity(matrix, &clusters[i], &clusters[j]);
                if best.is_none_or(|(_, _, s)| sim > s) {
                    best = Some((i, j, sim));
                }
            }
        }
        // Merge if above threshold (lines 8-9), otherwise stop (line 2 condition).
        match best {
            Some((i, j, sim)) if sim > gamma => {
                let merged = clusters.swap_remove(j);
                clusters[i].extend(merged);
                clusters[i].sort_unstable();
            }
            _ => break,
        }
        if clusters.len() == 1 {
            break;
        }
    }
    // Deterministic output order regardless of the merge sequence.
    for c in &mut clusters {
        c.sort_unstable();
    }
    clusters.sort_by_key(|c| c[0]);
    clusters
}

/// Convenience: the size distribution of a clustering (used by experiment reports).
pub fn cluster_sizes(clusters: &Clusters) -> Vec<usize> {
    let mut sizes: Vec<usize> = clusters.iter().map(Vec::len).collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::QueryNeighborhood;
    use hcsp_graph::VertexId;

    fn nbh(fwd: &[u32], bwd: &[u32]) -> QueryNeighborhood {
        QueryNeighborhood {
            forward: fwd.iter().map(|&x| VertexId(x)).collect(),
            backward: bwd.iter().map(|&x| VertexId(x)).collect(),
        }
    }

    #[test]
    fn similar_queries_merge_dissimilar_stay_apart() {
        // Queries 0 and 1 share everything; query 2 shares nothing.
        let ns = vec![
            nbh(&[1, 2, 3], &[9]),
            nbh(&[1, 2, 3], &[9]),
            nbh(&[50], &[60]),
        ];
        let matrix = SimilarityMatrix::compute(&ns);
        let clusters = cluster_queries(&matrix, 0.8);
        assert_eq!(clusters, vec![vec![0, 1], vec![2]]);
        assert_eq!(cluster_sizes(&clusters), vec![2, 1]);
    }

    #[test]
    fn gamma_one_keeps_everything_separate() {
        let ns = vec![nbh(&[1], &[2]), nbh(&[1], &[2]), nbh(&[1], &[2])];
        let matrix = SimilarityMatrix::compute(&ns);
        // δ never exceeds 1, and the merge condition is strict (> γ), so γ = 1 disables
        // clustering entirely.
        let clusters = cluster_queries(&matrix, 1.0);
        assert_eq!(clusters.len(), 3);
    }

    #[test]
    fn gamma_zero_merges_any_overlap() {
        // Chain of pairwise overlaps: 0-1 overlap, 1-2 overlap, 0-2 none.
        let ns = vec![
            nbh(&[1, 2], &[10, 11]),
            nbh(&[2, 3], &[11, 12]),
            nbh(&[3, 4], &[12, 13]),
        ];
        let matrix = SimilarityMatrix::compute(&ns);
        let clusters = cluster_queries(&matrix, 0.0);
        // Everything with positive transitive similarity collapses into one cluster.
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0], vec![0, 1, 2]);
    }

    #[test]
    fn totally_dissimilar_queries_never_merge_even_at_gamma_zero() {
        let ns = vec![nbh(&[1], &[2]), nbh(&[3], &[4]), nbh(&[5], &[6])];
        let matrix = SimilarityMatrix::compute(&ns);
        // All pairwise similarities are exactly 0, which is not > 0.
        let clusters = cluster_queries(&matrix, 0.0);
        assert_eq!(clusters.len(), 3);
    }

    #[test]
    fn paper_example_4_1_shape() {
        // Mimic Example 4.1: q0,q1,q2 highly similar; q3,q4 highly similar; the two groups
        // share little. Exact µ values differ from the paper's graph, but the clustering
        // outcome {q0,q1,q2} {q3,q4} at γ=0.8 must match.
        let ns = vec![
            nbh(&[1, 4, 7, 9, 10], &[12, 6, 10]),
            nbh(&[1, 4, 7, 9, 10, 2], &[12, 6, 10, 13]),
            nbh(&[1, 4, 7, 9, 10, 5], &[12, 6, 10, 11]),
            nbh(&[40, 41, 42, 9], &[50, 51]),
            nbh(&[40, 41, 42], &[50, 51, 52]),
        ];
        let matrix = SimilarityMatrix::compute(&ns);
        let clusters = cluster_queries(&matrix, 0.8);
        assert_eq!(clusters, vec![vec![0, 1, 2], vec![3, 4]]);
    }

    #[test]
    fn degenerate_inputs() {
        let empty = SimilarityMatrix::compute(&[]);
        assert!(cluster_queries(&empty, 0.5).is_empty());
        let single = SimilarityMatrix::compute(&[nbh(&[1], &[2])]);
        assert_eq!(cluster_queries(&single, 0.5), vec![vec![0]]);
    }
}
