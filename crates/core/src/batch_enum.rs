//! `BatchEnum` — the paper's contributed batch algorithm (Algorithm 4, §IV-C).
//!
//! The pipeline per batch is:
//!
//! 1. **BuildIndex** — one two-sided multi-source BFS index for the whole batch.
//! 2. **ClusterQuery** — hierarchical clustering of the queries by neighbourhood
//!    similarity (Algorithm 2) with threshold γ.
//! 3. **IdentifySubquery** — per cluster, common HC-s path query detection on `G` and
//!    `G^r` (Algorithm 3), producing the query sharing graph Ψ.
//! 4. **Enumeration** — the nodes of Ψ are evaluated in topological order: each HC-s path
//!    query is materialised once (splicing the cached results of its providers instead of
//!    re-exploring), and each HC-s-t query is answered by concatenating the cached results
//!    of its two half queries with `⊕`. Cache entries are evicted as soon as their last
//!    user has been processed.

use crate::buffers::SearchBuffers;
use crate::cache::ResultCache;
use crate::clustering::cluster_queries;
use crate::concat::concatenate_scratch;
use crate::detection::detect_cluster;
use crate::path::PathSet;
use crate::query::{BatchSummary, HcsQuery, PathQuery, QueryId};
use crate::search::ExpansionMode;
use crate::search_order::SearchOrder;
use crate::sharing_graph::{AnchorSlack, NodeId, QueryNode, SharingGraph};
use crate::similarity::{QueryNeighborhood, SimilarityMatrix};
use crate::sink::{PathSink, SinkFlow};
use crate::stats::{EnumStats, SearchCounters, Stage};
use hcsp_graph::{DiGraph, VertexId};
use hcsp_index::BatchIndex;
use std::time::Instant;

/// Default clustering threshold used by the paper's experiments ("We set the default value
/// of γ to 0.5").
pub const DEFAULT_GAMMA: f64 = 0.5;

/// Configuration of the shared batch algorithm.
#[derive(Debug, Clone, Copy)]
pub struct BatchEnum {
    /// Neighbour expansion order; [`SearchOrder::DistanceThenDegree`] yields `BatchEnum+`.
    pub order: SearchOrder,
    /// Clustering threshold γ ∈ [0, 1]. γ = 1 disables clustering (every query alone).
    pub gamma: f64,
    /// Shared-search expansion mechanics (frontier engine vs recursive oracle).
    pub mode: ExpansionMode,
}

impl Default for BatchEnum {
    fn default() -> Self {
        BatchEnum {
            order: SearchOrder::default(),
            gamma: DEFAULT_GAMMA,
            mode: ExpansionMode::default(),
        }
    }
}

impl BatchEnum {
    /// Creates the algorithm with an explicit search order and γ (default expansion mode).
    pub fn new(order: SearchOrder, gamma: f64) -> Self {
        BatchEnum {
            order,
            gamma,
            mode: ExpansionMode::default(),
        }
    }

    /// Selects the shared-search expansion mode (builder style).
    pub fn with_mode(mut self, mode: ExpansionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Processes a batch of queries, streaming every result path into `sink`.
    pub fn run_batch<S: PathSink>(
        &self,
        graph: &DiGraph,
        queries: &[PathQuery],
        sink: &mut S,
    ) -> EnumStats {
        if queries.is_empty() {
            sink.finish();
            return EnumStats::new(0);
        }

        // Stage 1: BuildIndex (Alg. 4 lines 1-2).
        let start = Instant::now();
        let summary = BatchSummary::of(queries);
        let index = BatchIndex::build(
            graph,
            &summary.sources,
            &summary.targets,
            summary.max_hop_limit,
        );
        let build_time = start.elapsed();

        let mut stats = self.run_batch_with_index(graph, &index, queries, sink);
        stats.add_stage(Stage::BuildIndex, build_time);
        stats
    }

    /// Processes a batch against an already-built index (stages 2–4 only).
    ///
    /// The index may cover a *superset* of the batch — more roots, a larger hop bound —
    /// which is how the long-lived serving engine reuses one index across micro-batches:
    /// extra roots are never consulted and far entries are filtered against per-query
    /// budgets downstream. The index must cover at least the batch's endpoint sets at
    /// `max_hop_limit`, or results will be silently pruned.
    pub fn run_batch_with_index<S: PathSink>(
        &self,
        graph: &DiGraph,
        index: &BatchIndex,
        queries: &[PathQuery],
        sink: &mut S,
    ) -> EnumStats {
        let mut stats = EnumStats::new(queries.len());
        if queries.is_empty() {
            sink.finish();
            return stats;
        }

        // Stage 2: ClusterQuery (Alg. 4 line 3 / Alg. 2).
        let start = Instant::now();
        let neighborhoods: Vec<QueryNeighborhood> = queries
            .iter()
            .map(|q| QueryNeighborhood::from_index(index, q))
            .collect();
        let matrix = SimilarityMatrix::compute(&neighborhoods);
        let clusters = cluster_queries(&matrix, self.gamma);
        stats.num_clusters = clusters.len();
        stats.add_stage(Stage::ClusterQuery, start.elapsed());

        // Stages 3-4 per cluster (Alg. 4 lines 4-16); one buffer set for the whole batch.
        let mut buffers = SearchBuffers::for_graph(graph);
        for cluster in &clusters {
            let flow = self.process_cluster(
                graph,
                index,
                queries,
                cluster,
                sink,
                &mut stats,
                &mut buffers,
            );
            if flow.stops_batch() {
                break;
            }
        }
        sink.finish();
        stats
    }

    /// Detects and evaluates one cluster of queries. Returns the batch-level control
    /// flow ([`SinkFlow::Stop`] when the sink declared the whole batch satisfied).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn process_cluster<S: PathSink>(
        &self,
        graph: &DiGraph,
        index: &BatchIndex,
        queries: &[PathQuery],
        cluster: &[QueryId],
        sink: &mut S,
        stats: &mut EnumStats,
        buffers: &mut SearchBuffers,
    ) -> SinkFlow {
        // Stage 3: IdentifySubquery.
        let start = Instant::now();
        let cluster_queries_list: Vec<(QueryId, PathQuery)> =
            cluster.iter().map(|&qid| (qid, queries[qid])).collect();
        let mut sharing = SharingGraph::new();
        let outcome = detect_cluster(graph, index, &cluster_queries_list, &mut sharing);
        stats.num_shared_subqueries += outcome.dominating_created;
        let slacks = sharing.anchor_slacks(queries);
        let order = sharing.topological_order();
        stats.add_stage(Stage::IdentifySubquery, start.elapsed());

        // Early-termination support: a query the sink already declared satisfied
        // (`remaining_quota == Some(0)`) is dropped from the cluster's work, and — by a
        // reverse pass over the topological order — so is every HC-s path node whose
        // only (transitive) users are satisfied queries: its materialisation would feed
        // no one. Nodes with a mix of live and dead users still materialise in full
        // (their slack set conservatively includes the dead queries' anchors).
        let needed: Vec<bool> = {
            let all_live = cluster
                .iter()
                .all(|&qid| sink.remaining_quota(qid) != Some(0));
            if all_live {
                vec![true; sharing.len()]
            } else {
                let mut needed = vec![false; sharing.len()];
                for &node_id in order.iter().rev() {
                    needed[node_id] = match *sharing.node(node_id) {
                        QueryNode::Full(qid) => sink.remaining_quota(qid) != Some(0),
                        QueryNode::Hcs(_) => {
                            sharing.users(node_id).iter().any(|&(user, _)| needed[user])
                        }
                    };
                }
                needed
            }
        };

        // Stage 4: Enumeration in topological order with the shared result cache.
        let start = Instant::now();
        let mut cache = ResultCache::new(sharing.len());
        let mut counters = SearchCounters::default();
        let mut batch_flow = SinkFlow::Continue;
        for &node_id in &order {
            match *sharing.node(node_id) {
                QueryNode::Hcs(hcs) if needed[node_id] => {
                    let paths = self.materialize_node(
                        graph,
                        index,
                        &sharing,
                        node_id,
                        hcs,
                        &slacks[node_id],
                        &cache,
                        &mut counters,
                        buffers,
                    );
                    cache.insert(node_id, paths, sharing.users(node_id).len());
                }
                QueryNode::Full(qid) if needed[node_id] => {
                    let flow = self.answer_query(
                        &sharing,
                        node_id,
                        qid,
                        &queries[qid],
                        &cache,
                        sink,
                        &mut counters,
                        buffers,
                    );
                    batch_flow = flow.batch_flow();
                }
                // Skipped node: no live user anywhere downstream.
                QueryNode::Hcs(_) | QueryNode::Full(_) => {}
            }
            // Alg. 4 lines 14-16: this node has consumed its providers; evict exhausted
            // ones. Runs for skipped nodes too, so providers shared with live users keep
            // an accurate remaining-user count (releasing an absent entry is a no-op).
            for &(provider, _) in sharing.providers(node_id) {
                cache.release(provider);
            }
            if batch_flow.stops_batch() {
                break;
            }
        }
        stats.peak_cached_results = stats.peak_cached_results.max(cache.peak_resident());
        stats.counters.merge(&counters);
        stats.add_stage(Stage::Enumeration, start.elapsed());
        batch_flow
    }

    /// Materialises one HC-s path query node: every simple path from its root within its
    /// budget that can still serve at least one dependent HC-s-t query, splicing cached
    /// provider results whenever the search reaches a provider's root.
    #[allow(clippy::too_many_arguments)]
    fn materialize_node(
        &self,
        graph: &DiGraph,
        index: &BatchIndex,
        sharing: &SharingGraph,
        node_id: NodeId,
        hcs: HcsQuery,
        slacks: &[AnchorSlack],
        cache: &ResultCache,
        counters: &mut SearchCounters,
        buffers: &mut SearchBuffers,
    ) -> PathSet {
        // The result set is cache-owned after this call, so it cannot come from the
        // reusable buffers; the DFS state (stack, marks, candidate arena) does.
        let mut out = PathSet::new();
        buffers.begin_traversal(graph);
        buffers.stack.push(hcs.root);
        buffers.marks.mark(hcs.root);
        // Pre-resolve "which provider is rooted at vertex w" once: the lookup happens for
        // every candidate neighbour of every expansion, and half queries of large clusters
        // can have hundreds of providers.
        let mut providers_by_root: Vec<(VertexId, NodeId, HcsQuery)> = sharing
            .providers(node_id)
            .iter()
            .filter_map(|&(p, _)| sharing.node(p).as_hcs().map(|q| (q.root, p, *q)))
            .collect();
        providers_by_root.sort_by_key(|&(root, _, q)| (root, std::cmp::Reverse(q.budget)));
        providers_by_root.dedup_by_key(|&mut (root, _, _)| root);
        match self.mode {
            ExpansionMode::Recursive => self.extend_shared(
                graph,
                index,
                hcs,
                slacks,
                &providers_by_root,
                cache,
                buffers,
                &mut out,
                counters,
            ),
            ExpansionMode::Frontier => self.extend_shared_frontier(
                graph,
                index,
                hcs,
                slacks,
                &providers_by_root,
                cache,
                buffers,
                &mut out,
                counters,
            ),
        }
        out
    }

    /// Recursive shared prefix extension (the `Search` procedure of Algorithm 4).
    /// `buffers.stack` holds the current prefix, mirrored by `buffers.marks`.
    #[allow(clippy::too_many_arguments)]
    fn extend_shared(
        &self,
        graph: &DiGraph,
        index: &BatchIndex,
        hcs: HcsQuery,
        slacks: &[AnchorSlack],
        providers_by_root: &[(VertexId, NodeId, HcsQuery)],
        cache: &ResultCache,
        buffers: &mut SearchBuffers,
        out: &mut PathSet,
        counters: &mut SearchCounters,
    ) {
        counters.expanded_vertices += 1;
        counters.stored_prefixes += 1;
        out.push_slice(&buffers.stack);

        let current_hops = (buffers.stack.len() - 1) as u32;
        if current_hops >= hcs.budget {
            return;
        }
        let last = *buffers.stack.last().expect("prefix never empty");
        let remaining_after = hcs.budget - current_hops - 1;

        let level_start = buffers.candidates.len();
        for &w in graph.neighbors(last, hcs.direction) {
            counters.scanned_edges += 1;
            let new_len = current_hops + 1;
            if !Self::is_useful(index, hcs, slacks, w, new_len) {
                counters.pruned_edges += 1;
                continue;
            }
            if buffers.marks.contains(w) {
                continue;
            }
            buffers.candidates.push(w);
        }
        if let Some(first_anchor) = slacks.first() {
            self.order.arrange(
                &mut buffers.candidates[level_start..],
                graph,
                index,
                first_anchor.anchor,
                hcs.direction,
            );
        }

        let level_end = buffers.candidates.len();
        for i in level_start..level_end {
            let w = buffers.candidates[i];
            // Splice the cached results of a provider rooted at w when its budget covers
            // everything this prefix still needs (Alg. 4 lines 22-23).
            if let Ok(slot) = providers_by_root.binary_search_by_key(&w, |&(root, _, _)| root) {
                let (_, provider, provider_query) = providers_by_root[slot];
                if provider_query.covers_budget(remaining_after) {
                    if let Some(cached) = cache.get(provider) {
                        counters.cache_splices += 1;
                        for suffix in cached.iter() {
                            if (suffix.len() - 1) as u32 > remaining_after {
                                continue;
                            }
                            if suffix.iter().any(|&v| buffers.marks.contains(v)) {
                                continue;
                            }
                            counters.stored_prefixes += 1;
                            out.push_concat(&buffers.stack, suffix);
                        }
                        continue;
                    }
                }
            }
            buffers.stack.push(w);
            buffers.marks.mark(w);
            self.extend_shared(
                graph,
                index,
                hcs,
                slacks,
                providers_by_root,
                cache,
                buffers,
                out,
                counters,
            );
            buffers.marks.unmark(w);
            buffers.stack.pop();
        }
        buffers.candidates.truncate(level_start);
    }

    /// Iterative frontier-at-a-time form of [`BatchEnum::extend_shared`], byte-identical
    /// in emission order and counters (the shared-search analogue of
    /// `SearchContext::extend_frontier`).
    ///
    /// The per-anchor slack constraints are resolved to [`AnchorDistances`] views once
    /// per materialisation, so the usefulness test probes each anchor's sparse map
    /// directly instead of binary-searching the index root table per `(edge, anchor)`
    /// pair. Provider splicing happens at candidate-take — exactly where the recursive
    /// engine checks before descending.
    ///
    /// [`AnchorDistances`]: hcsp_index::AnchorDistances
    #[allow(clippy::too_many_arguments)]
    fn extend_shared_frontier(
        &self,
        graph: &DiGraph,
        index: &BatchIndex,
        hcs: HcsQuery,
        slacks: &[AnchorSlack],
        providers_by_root: &[(VertexId, NodeId, HcsQuery)],
        cache: &ResultCache,
        buffers: &mut SearchBuffers,
        out: &mut PathSet,
        counters: &mut SearchCounters,
    ) {
        let slack_views: Vec<(u32, hcsp_index::AnchorDistances<'_>)> = slacks
            .iter()
            .map(|c| (c.slack, index.anchor_view(hcs.direction, c.anchor)))
            .collect();
        counters.expanded_vertices += 1;
        counters.stored_prefixes += 1;
        out.push_slice(&buffers.stack);
        if hcs.budget == 0 {
            return;
        }
        self.fill_shared_level(graph, hcs, &slack_views, 0, buffers, counters);
        loop {
            let Some(top) = buffers.levels.last_mut() else {
                return;
            };
            if top.cursor < top.end {
                let w = buffers.candidates[top.cursor];
                top.cursor += 1;
                // The stack tail is this level's owner, so its length gives the same
                // `current_hops` the recursive call frame would hold.
                let current_hops = (buffers.stack.len() - 1) as u32;
                let remaining_after = hcs.budget - current_hops - 1;
                // Splice the cached results of a provider rooted at w when its budget
                // covers everything this prefix still needs (Alg. 4 lines 22-23).
                if let Ok(slot) = providers_by_root.binary_search_by_key(&w, |&(root, _, _)| root) {
                    let (_, provider, provider_query) = providers_by_root[slot];
                    if provider_query.covers_budget(remaining_after) {
                        if let Some(cached) = cache.get(provider) {
                            counters.cache_splices += 1;
                            for suffix in cached.iter() {
                                if (suffix.len() - 1) as u32 > remaining_after {
                                    continue;
                                }
                                if suffix.iter().any(|&v| buffers.marks.contains(v)) {
                                    continue;
                                }
                                counters.stored_prefixes += 1;
                                out.push_concat(&buffers.stack, suffix);
                            }
                            continue;
                        }
                    }
                }
                buffers.stack.push(w);
                buffers.marks.mark(w);
                counters.expanded_vertices += 1;
                counters.stored_prefixes += 1;
                out.push_slice(&buffers.stack);
                let new_hops = current_hops + 1;
                if new_hops < hcs.budget {
                    self.fill_shared_level(graph, hcs, &slack_views, new_hops, buffers, counters);
                } else {
                    buffers.marks.unmark(w);
                    buffers.stack.pop();
                }
            } else {
                let run = buffers.levels.pop().expect("checked non-empty above");
                buffers.candidates.truncate(run.start);
                buffers.cand_keys.truncate(run.start);
                if !buffers.levels.is_empty() {
                    let owner = *buffers.stack.last().expect("prefix never empty");
                    buffers.marks.unmark(owner);
                    buffers.stack.pop();
                }
            }
        }
    }

    /// Fills one shared-search frontier level: one contiguous filter pass over the
    /// adjacency segment of the prefix tail, recording the `(dist-to-first-anchor,
    /// degree)` sort key of every survivor.
    ///
    /// The recursive oracle arranges against the *first* anchor only (the sort is a
    /// heuristic, not a correctness condition), so the key distance is taken from the
    /// first slack view unconditionally — a candidate admitted via a later anchor may
    /// key at `INF`, exactly as `SearchOrder::arrange` would place it.
    fn fill_shared_level(
        &self,
        graph: &DiGraph,
        hcs: HcsQuery,
        slack_views: &[(u32, hcsp_index::AnchorDistances<'_>)],
        current_hops: u32,
        buffers: &mut SearchBuffers,
        counters: &mut SearchCounters,
    ) {
        let last = *buffers.stack.last().expect("prefix never empty");
        let start = buffers.candidates.len();
        let new_len = current_hops + 1;
        let neighbors = graph.neighbors(last, hcs.direction);
        let degrees = graph.neighbor_degrees(last, hcs.direction);
        for (&w, &deg) in neighbors.iter().zip(degrees) {
            counters.scanned_edges += 1;
            if !Self::is_useful_views(slack_views, w, new_len) {
                counters.pruned_edges += 1;
                continue;
            }
            if buffers.marks.contains(w) {
                continue;
            }
            let key_dist = slack_views.first().map_or(0, |(_, view)| view.dist(w));
            buffers.candidates.push(w);
            buffers.cand_keys.push((key_dist, deg));
        }
        let end = buffers.candidates.len();
        if self.order == SearchOrder::DistanceThenDegree
            && !slack_views.is_empty()
            && end - start > 1
        {
            buffers.sort_run_by_keys(start, end);
        }
        buffers.levels.push(crate::buffers::LevelRun {
            start,
            cursor: start,
            end,
        });
    }

    /// [`BatchEnum::is_useful`] over pre-resolved anchor views.
    fn is_useful_views(
        slack_views: &[(u32, hcsp_index::AnchorDistances<'_>)],
        w: VertexId,
        new_len: u32,
    ) -> bool {
        if slack_views.is_empty() {
            return true;
        }
        slack_views.iter().any(|&(slack, view)| {
            let dist = view.dist(w);
            dist != hcsp_index::INF && new_len.saturating_add(dist) <= slack
        })
    }

    /// Lemma 3.1 pruning generalised to a shared HC-s path query: an extension to `w` of
    /// `new_len` hops is useful when at least one dependent HC-s-t query can still complete
    /// a path through it within its own hop constraint.
    fn is_useful(
        index: &BatchIndex,
        hcs: HcsQuery,
        slacks: &[AnchorSlack],
        w: VertexId,
        new_len: u32,
    ) -> bool {
        if slacks.is_empty() {
            return true;
        }
        slacks.iter().any(|constraint| {
            let dist = index.dist_towards(hcs.direction, w, constraint.anchor);
            dist != hcsp_index::INF && new_len.saturating_add(dist) <= constraint.slack
        })
    }

    /// Answers one HC-s-t query by joining the cached results of its two half queries
    /// (Alg. 4 lines 11-13). The join honours sink verdicts: a `SkipQuery` the moment
    /// the query's result mode is satisfied aborts the remaining join pairs (the
    /// short-circuit of `Exists`/`FirstK` under the sharing algorithm, whose halves are
    /// materialised once for the whole cluster). Returns the last verdict.
    #[allow(clippy::too_many_arguments)]
    fn answer_query<S: PathSink>(
        &self,
        sharing: &SharingGraph,
        node_id: NodeId,
        qid: QueryId,
        query: &PathQuery,
        cache: &ResultCache,
        sink: &mut S,
        counters: &mut SearchCounters,
        buffers: &mut SearchBuffers,
    ) -> SinkFlow {
        let mut forward: Option<&PathSet> = None;
        let mut backward: Option<&PathSet> = None;
        for &(provider, _) in sharing.providers(node_id) {
            if let Some(hcs) = sharing.node(provider).as_hcs() {
                match hcs.direction {
                    hcsp_graph::Direction::Forward => forward = cache.get(provider),
                    hcsp_graph::Direction::Backward => backward = cache.get(provider),
                }
            }
        }
        let (Some(forward), Some(backward)) = (forward, backward) else {
            debug_assert!(
                false,
                "half queries of q{qid} must be materialised before the query"
            );
            return SinkFlow::Continue;
        };
        let mut flow = SinkFlow::Continue;
        let join = concatenate_scratch(
            forward,
            backward,
            query.hop_limit,
            &mut buffers.join,
            |path| {
                flow = sink.accept(qid, path);
                flow
            },
        );
        counters.produced_paths += join.produced as u64;
        flow
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic_enum::BasicEnum;
    use crate::bruteforce::{canonical, enumerate_reference};
    use crate::sink::{CollectSink, CountSink};
    use hcsp_graph::generators::erdos_renyi::gnm_random;
    use hcsp_graph::generators::preferential::{preferential_attachment, PreferentialConfig};
    use hcsp_graph::generators::regular::{complete, grid, layered_dag};
    use hcsp_graph::GraphBuilder;

    /// The paper's Fig. 1 graph (same edge set as the detection tests).
    fn paper_graph() -> DiGraph {
        let edges: &[(u32, u32)] = &[
            (0, 1),
            (0, 4),
            (2, 1),
            (2, 4),
            (5, 1),
            (1, 7),
            (1, 8),
            (7, 10),
            (7, 8),
            (10, 12),
            (12, 11),
            (12, 13),
            (4, 9),
            (9, 3),
            (9, 15),
            (9, 8),
            (3, 6),
            (15, 6),
            (6, 11),
            (6, 13),
            (6, 14),
        ];
        let mut b = GraphBuilder::new();
        for &(u, v) in edges {
            b.add_edge(VertexId(u), VertexId(v));
        }
        b.reserve_vertices(16);
        b.build()
    }

    fn paper_queries() -> Vec<PathQuery> {
        vec![
            PathQuery::new(0u32, 11u32, 5),
            PathQuery::new(2u32, 13u32, 5),
            PathQuery::new(5u32, 12u32, 5),
            PathQuery::new(4u32, 14u32, 4),
            PathQuery::new(9u32, 14u32, 3),
        ]
    }

    fn assert_matches_reference(
        graph: &DiGraph,
        queries: &[PathQuery],
        order: SearchOrder,
        gamma: f64,
    ) {
        let mut sink = CollectSink::new(queries.len());
        BatchEnum::new(order, gamma).run_batch(graph, queries, &mut sink);
        for (id, query) in queries.iter().enumerate() {
            let expected = canonical(enumerate_reference(graph, query));
            let got = canonical(sink.paths(id).to_paths());
            assert_eq!(
                got, expected,
                "query {query} (order {order:?}, gamma {gamma})"
            );
        }
    }

    #[test]
    fn paper_example_queries_match_reference() {
        let g = paper_graph();
        let queries = paper_queries();
        for gamma in [0.0, 0.5, 0.8, 1.0] {
            assert_matches_reference(&g, &queries, SearchOrder::VertexId, gamma);
            assert_matches_reference(&g, &queries, SearchOrder::DistanceThenDegree, gamma);
        }
    }

    #[test]
    fn paper_example_q0_has_three_paths() {
        let g = paper_graph();
        let mut sink = CollectSink::new(5);
        BatchEnum::default().run_batch(&g, &paper_queries(), &mut sink);
        let q0_paths = canonical(sink.paths(0).to_paths());
        assert_eq!(
            q0_paths.len(),
            3,
            "Example 2.1: q0 has exactly three HC-s-t paths"
        );
        let as_ids: Vec<Vec<u32>> = q0_paths
            .iter()
            .map(|p| p.vertices().iter().map(|v| v.raw()).collect())
            .collect();
        assert!(as_ids.contains(&vec![0, 1, 7, 10, 12, 11]));
        assert!(as_ids.contains(&vec![0, 4, 9, 3, 6, 11]));
        assert!(as_ids.contains(&vec![0, 4, 9, 15, 6, 11]));
    }

    #[test]
    fn matches_basic_enum_on_structured_graphs() {
        for (graph, queries) in [
            (
                grid(4, 4),
                vec![
                    PathQuery::new(0u32, 15u32, 6),
                    PathQuery::new(1u32, 15u32, 6),
                    PathQuery::new(0u32, 14u32, 6),
                    PathQuery::new(4u32, 15u32, 5),
                ],
            ),
            (
                layered_dag(3, 3),
                vec![
                    PathQuery::new(0u32, 10u32, 4),
                    PathQuery::new(0u32, 10u32, 6),
                    PathQuery::new(1u32, 10u32, 3),
                ],
            ),
            (
                complete(6),
                vec![
                    PathQuery::new(0u32, 5u32, 3),
                    PathQuery::new(1u32, 5u32, 3),
                    PathQuery::new(0u32, 4u32, 4),
                ],
            ),
        ] {
            let mut batch_sink = CountSink::new(queries.len());
            BatchEnum::default().run_batch(&graph, &queries, &mut batch_sink);
            let mut basic_sink = CountSink::new(queries.len());
            BasicEnum::default().run_batch(&graph, &queries, &mut basic_sink);
            assert_eq!(batch_sink.counts(), basic_sink.counts());
        }
    }

    #[test]
    fn matches_reference_on_random_graphs_with_overlapping_queries() {
        for seed in 0..3 {
            let g = gnm_random(70, 420, seed).unwrap();
            // Queries deliberately share sources/targets to trigger sharing.
            let queries = vec![
                PathQuery::new(0u32, 30u32, 5),
                PathQuery::new(0u32, 31u32, 5),
                PathQuery::new(1u32, 30u32, 4),
                PathQuery::new(1u32, 31u32, 5),
                PathQuery::new(2u32, 32u32, 4),
            ];
            assert_matches_reference(&g, &queries, SearchOrder::VertexId, 0.5);
            assert_matches_reference(&g, &queries, SearchOrder::DistanceThenDegree, 0.3);
        }
    }

    #[test]
    fn frontier_mode_matches_recursive_mode_byte_for_byte() {
        // Same paths in the same order, same counters — including cache splices, across
        // clustering regimes and both search orders.
        let g = paper_graph();
        let queries = paper_queries();
        for order in [SearchOrder::VertexId, SearchOrder::DistanceThenDegree] {
            for gamma in [0.0, 0.5, 1.0] {
                let mut rec_sink = CollectSink::new(queries.len());
                let rec_stats = BatchEnum::new(order, gamma)
                    .with_mode(ExpansionMode::Recursive)
                    .run_batch(&g, &queries, &mut rec_sink);
                let mut fro_sink = CollectSink::new(queries.len());
                let fro_stats = BatchEnum::new(order, gamma)
                    .with_mode(ExpansionMode::Frontier)
                    .run_batch(&g, &queries, &mut fro_sink);
                for id in 0..queries.len() {
                    assert_eq!(
                        fro_sink.paths(id).to_paths(),
                        rec_sink.paths(id).to_paths(),
                        "query {id} (order {order:?}, gamma {gamma})"
                    );
                }
                assert_eq!(
                    fro_stats.counters, rec_stats.counters,
                    "order {order:?}, gamma {gamma}"
                );
            }
        }
    }

    #[test]
    fn sharing_is_detected_for_similar_queries() {
        let g = paper_graph();
        let queries = paper_queries();
        let mut sink = CountSink::new(queries.len());
        let stats = BatchEnum::new(SearchOrder::VertexId, 0.5).run_batch(&g, &queries, &mut sink);
        assert!(
            stats.num_clusters < queries.len(),
            "similar queries must be clustered"
        );
        assert!(
            stats.num_shared_subqueries > 0,
            "dominating HC-s path queries must be found"
        );
        assert!(
            stats.counters.cache_splices > 0,
            "cached results must actually be reused"
        );
        assert!(stats.peak_cached_results > 0);
    }

    #[test]
    fn gamma_one_disables_clustering_but_stays_correct() {
        let g = paper_graph();
        let queries = paper_queries();
        let mut sink = CountSink::new(queries.len());
        let stats = BatchEnum::new(SearchOrder::VertexId, 1.0).run_batch(&g, &queries, &mut sink);
        assert_eq!(stats.num_clusters, queries.len());
        // Still correct.
        let mut reference = CountSink::new(queries.len());
        BasicEnum::default().run_batch(&g, &queries, &mut reference);
        assert_eq!(sink.counts(), reference.counts());
    }

    #[test]
    fn duplicate_queries_share_everything() {
        let g = preferential_attachment(PreferentialConfig {
            num_vertices: 200,
            edges_per_vertex: 3,
            reciprocity: 0.3,
            seed: 7,
        })
        .unwrap();
        let queries = vec![PathQuery::new(0u32, 50u32, 4); 4];
        let mut sink = CountSink::new(queries.len());
        let stats = BatchEnum::default().run_batch(&g, &queries, &mut sink);
        // All four queries produce identical counts.
        let c = sink.count(0);
        assert!(sink.counts().iter().all(|&x| x == c));
        // They collapse onto a single pair of half queries, so at most one cluster exists.
        assert_eq!(stats.num_clusters, 1);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let g = complete(4);
        let mut sink = CountSink::new(0);
        let stats = BatchEnum::default().run_batch(&g, &[], &mut sink);
        assert_eq!(stats.num_queries, 0);
        assert_eq!(stats.total_time(), std::time::Duration::ZERO);
    }

    #[test]
    fn stage_decomposition_covers_all_four_stages() {
        let g = paper_graph();
        let queries = paper_queries();
        let mut sink = CountSink::new(queries.len());
        let stats = BatchEnum::default().run_batch(&g, &queries, &mut sink);
        for stage in Stage::ALL {
            assert!(
                stats.stage_time(stage) > std::time::Duration::ZERO,
                "stage {stage} must be timed"
            );
        }
    }
}
