//! The query sharing graph Ψ (Definition 4.7).
//!
//! Ψ is a DAG whose nodes are either original HC-s-t path queries or (shared / dominating)
//! HC-s path queries, and whose edges record "the user node can reuse the provider node's
//! materialised results". Edges are oriented **provider → user**, so a topological order
//! of Ψ materialises every provider before any of its users — exactly the evaluation order
//! of Algorithm 4.
//!
//! Each dependency edge additionally stores the *offset*: the number of hops the user has
//! already consumed (counting from the root of the HC-s-t query it ultimately serves) when
//! the provider's paths are spliced in. The offset is what translates a query's hop
//! constraint into the *slack* available to a deeply shared HC-s path query, which in turn
//! drives the Lemma 3.1 pruning inside the shared enumeration.

use crate::query::{HcsQuery, PathQuery, QueryId};
use hcsp_graph::VertexId;
use std::collections::HashMap;

/// Index of a node inside a [`SharingGraph`].
pub type NodeId = usize;

/// A node of Ψ: either an original HC-s-t path query (a pure consumer) or an HC-s path
/// query whose results are materialised and shared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryNode {
    /// An original HC-s-t path query, identified by its position in the batch.
    Full(QueryId),
    /// An HC-s path query (either the half query of some HC-s-t query or a detected
    /// dominating query).
    Hcs(HcsQuery),
}

impl QueryNode {
    /// The HC-s path query if this node is one.
    pub fn as_hcs(&self) -> Option<&HcsQuery> {
        match self {
            QueryNode::Hcs(q) => Some(q),
            QueryNode::Full(_) => None,
        }
    }
}

/// An edge of Ψ: `user` reuses `provider`'s results after consuming `offset` hops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dependency {
    /// The node whose materialised results are reused.
    pub provider: NodeId,
    /// The node that reuses them.
    pub user: NodeId,
    /// Hops consumed by the ultimate HC-s-t query before the provider's paths begin,
    /// measured relative to the *user*'s own root (`user.budget − remaining budget at the
    /// splice point`).
    pub offset: u32,
}

/// A pruning constraint attached to a shared HC-s path query: a path of `len` hops ending
/// at vertex `x` is worth keeping only if `len + dist(x, anchor) ≤ slack` for at least one
/// of the query's anchors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnchorSlack {
    /// The vertex the dependent HC-s-t query is heading towards (its target for forward
    /// HC-s path queries, its source for backward ones).
    pub anchor: VertexId,
    /// Maximum value of `len + dist(x, anchor)` still useful to that dependent query.
    pub slack: u32,
}

/// The query sharing graph Ψ.
#[derive(Debug, Clone, Default)]
pub struct SharingGraph {
    nodes: Vec<QueryNode>,
    /// Outgoing edges per node: users of this provider (with offsets).
    users: Vec<Vec<(NodeId, u32)>>,
    /// Incoming edges per node: providers of this user (with offsets).
    providers: Vec<Vec<(NodeId, u32)>>,
    /// Lookup of HC-s path query nodes by value (dedup).
    hcs_lookup: HashMap<HcsQuery, NodeId>,
    /// Lookup of full query nodes by query id.
    full_lookup: HashMap<QueryId, NodeId>,
}

impl SharingGraph {
    /// Creates an empty sharing graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node value.
    pub fn node(&self, id: NodeId) -> &QueryNode {
        &self.nodes[id]
    }

    /// All nodes with their ids.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &QueryNode)> + '_ {
        self.nodes.iter().enumerate()
    }

    /// Number of HC-s path query nodes (shared sub-queries + initial half queries).
    pub fn num_hcs_nodes(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, QueryNode::Hcs(_)))
            .count()
    }

    /// Adds (or returns the existing) node for an original HC-s-t path query.
    pub fn add_full_query(&mut self, query: QueryId) -> NodeId {
        if let Some(&id) = self.full_lookup.get(&query) {
            return id;
        }
        let id = self.push_node(QueryNode::Full(query));
        self.full_lookup.insert(query, id);
        id
    }

    /// Adds (or returns the existing) node for an HC-s path query.
    pub fn add_hcs_query(&mut self, query: HcsQuery) -> NodeId {
        if let Some(&id) = self.hcs_lookup.get(&query) {
            return id;
        }
        let id = self.push_node(QueryNode::Hcs(query));
        self.hcs_lookup.insert(query, id);
        id
    }

    /// Looks up the node of an HC-s path query if it exists.
    pub fn find_hcs(&self, query: &HcsQuery) -> Option<NodeId> {
        self.hcs_lookup.get(query).copied()
    }

    /// Looks up the node of a full query if it exists.
    pub fn find_full(&self, query: QueryId) -> Option<NodeId> {
        self.full_lookup.get(&query).copied()
    }

    fn push_node(&mut self, node: QueryNode) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(node);
        self.users.push(Vec::new());
        self.providers.push(Vec::new());
        id
    }

    /// Adds a dependency edge `provider → user` with the given offset.
    ///
    /// Self-dependencies and exact duplicates are ignored. Returns `false` (and adds
    /// nothing) if the edge would create a cycle, which keeps Ψ a DAG by construction.
    pub fn add_dependency(&mut self, provider: NodeId, user: NodeId, offset: u32) -> bool {
        if provider == user {
            return false;
        }
        if self.users[provider]
            .iter()
            .any(|&(u, o)| u == user && o == offset)
        {
            return true;
        }
        if !self.edge_is_trivially_acyclic(provider, user) && self.reaches(user, provider) {
            // provider is reachable from user: adding provider -> user would close a cycle.
            return false;
        }
        self.users[provider].push((user, offset));
        self.providers[user].push((provider, offset));
        true
    }

    /// Cheap structural argument that `provider → user` cannot close a cycle, avoiding the
    /// graph walk of [`SharingGraph::reaches`] for the overwhelmingly common edge shapes:
    /// HC-s-t query nodes never have outgoing edges (nothing reuses *their* results), and a
    /// provider that has no providers of its own cannot be the endpoint of any existing
    /// `user ⇒ provider` path, so no edge towards it can be part of a cycle. Freshly
    /// detected dominating queries fall into the second category, which covers the bulk of
    /// the edges inserted during detection.
    fn edge_is_trivially_acyclic(&self, provider: NodeId, user: NodeId) -> bool {
        matches!(self.nodes[user], QueryNode::Full(_)) || self.providers[provider].is_empty()
    }

    /// Whether `to` is reachable from `from` following provider → user edges.
    fn reaches(&self, from: NodeId, to: NodeId) -> bool {
        if from == to {
            return true;
        }
        let mut visited = vec![false; self.nodes.len()];
        let mut stack = vec![from];
        visited[from] = true;
        while let Some(n) = stack.pop() {
            for &(u, _) in &self.users[n] {
                if u == to {
                    return true;
                }
                if !visited[u] {
                    visited[u] = true;
                    stack.push(u);
                }
            }
        }
        false
    }

    /// Users (dependants) of a node, with offsets.
    pub fn users(&self, id: NodeId) -> &[(NodeId, u32)] {
        &self.users[id]
    }

    /// Providers of a node, with offsets.
    pub fn providers(&self, id: NodeId) -> &[(NodeId, u32)] {
        &self.providers[id]
    }

    /// The providers of `user` that are HC-s path queries rooted at `root` (the splice
    /// lookup performed at every expansion step of the shared enumeration).
    pub fn provider_rooted_at(&self, user: NodeId, root: VertexId) -> Option<(NodeId, HcsQuery)> {
        self.providers[user]
            .iter()
            .filter_map(|&(p, _)| self.nodes[p].as_hcs().map(|q| (p, *q)))
            .filter(|(_, q)| q.root == root)
            .max_by_key(|(_, q)| q.budget)
    }

    /// A topological order of Ψ: every provider appears before all of its users.
    ///
    /// The order is deterministic (Kahn's algorithm with the smallest ready node first).
    pub fn topological_order(&self) -> Vec<NodeId> {
        let n = self.nodes.len();
        let mut indegree: Vec<usize> = (0..n).map(|id| self.providers[id].len()).collect();
        let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<NodeId>> = (0..n)
            .filter(|&id| indegree[id] == 0)
            .map(std::cmp::Reverse)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(std::cmp::Reverse(node)) = ready.pop() {
            order.push(node);
            for &(user, _) in &self.users[node] {
                indegree[user] -= 1;
                if indegree[user] == 0 {
                    ready.push(std::cmp::Reverse(user));
                }
            }
        }
        debug_assert_eq!(order.len(), n, "Ψ must be acyclic by construction");
        order
    }

    /// Computes, for every HC-s path node, the anchor/slack constraints induced by the
    /// HC-s-t queries that (transitively) depend on it.
    ///
    /// For a full query `q` with half query `h` in direction `d`, `h` receives the pair
    /// `(q.anchor(d), q.hop_limit)`. A provider `p` reached from user `u` through an edge
    /// with offset `o` receives every pair of `u` with its slack reduced by `o` (keeping,
    /// per anchor, the largest slack — the union of usefulness conditions).
    pub fn anchor_slacks(&self, queries: &[PathQuery]) -> Vec<Vec<AnchorSlack>> {
        let mut slacks: Vec<HashMap<VertexId, u32>> = vec![HashMap::new(); self.nodes.len()];

        // Seed the half-query nodes from their full-query users.
        for (id, node) in self.nodes.iter().enumerate() {
            if let QueryNode::Hcs(hcs) = node {
                for &(user, _) in &self.users[id] {
                    if let QueryNode::Full(qid) = self.nodes[user] {
                        let q = &queries[qid];
                        let anchor = q.anchor(hcs.direction);
                        let entry = slacks[id].entry(anchor).or_insert(0);
                        *entry = (*entry).max(q.hop_limit);
                    }
                }
            }
        }

        // Propagate from users to providers: reverse topological order visits users first.
        let order = self.topological_order();
        for &node in order.iter().rev() {
            if self.nodes[node].as_hcs().is_none() {
                continue;
            }
            let node_slacks: Vec<(VertexId, u32)> =
                slacks[node].iter().map(|(&a, &s)| (a, s)).collect();
            for &(provider, offset) in &self.providers[node] {
                if self.nodes[provider].as_hcs().is_none() {
                    continue;
                }
                for &(anchor, slack) in &node_slacks {
                    let propagated = slack.saturating_sub(offset);
                    let entry = slacks[provider].entry(anchor).or_insert(0);
                    *entry = (*entry).max(propagated);
                }
            }
        }

        slacks
            .into_iter()
            .map(|m| {
                let mut v: Vec<AnchorSlack> = m
                    .into_iter()
                    .map(|(anchor, slack)| AnchorSlack { anchor, slack })
                    .collect();
                v.sort_by_key(|a| (a.anchor, a.slack));
                v
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcsp_graph::Direction;

    fn hcs(root: u32, budget: u32, dir: Direction) -> HcsQuery {
        HcsQuery::new(root, budget, dir)
    }

    #[test]
    fn nodes_are_deduplicated() {
        let mut g = SharingGraph::new();
        let a = g.add_hcs_query(hcs(1, 3, Direction::Forward));
        let b = g.add_hcs_query(hcs(1, 3, Direction::Forward));
        let c = g.add_hcs_query(hcs(1, 2, Direction::Forward));
        let f1 = g.add_full_query(0);
        let f2 = g.add_full_query(0);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(f1, f2);
        assert_eq!(g.len(), 3);
        assert_eq!(g.num_hcs_nodes(), 2);
        assert_eq!(g.find_hcs(&hcs(1, 3, Direction::Forward)), Some(a));
        assert_eq!(g.find_full(0), Some(f1));
        assert_eq!(g.find_full(9), None);
        assert!(!g.is_empty());
    }

    #[test]
    fn dependencies_reject_cycles_and_self_edges() {
        let mut g = SharingGraph::new();
        let a = g.add_hcs_query(hcs(1, 3, Direction::Forward));
        let b = g.add_hcs_query(hcs(2, 2, Direction::Forward));
        let c = g.add_hcs_query(hcs(3, 1, Direction::Forward));
        assert!(!g.add_dependency(a, a, 0));
        assert!(g.add_dependency(a, b, 1));
        assert!(g.add_dependency(b, c, 1));
        // c -> a would close the cycle a -> b -> c -> a.
        assert!(!g.add_dependency(c, a, 2));
        // duplicate edges are accepted but not double-inserted.
        assert!(g.add_dependency(a, b, 1));
        assert_eq!(g.users(a).len(), 1);
        assert_eq!(g.providers(b).len(), 1);
    }

    #[test]
    fn topological_order_puts_providers_first() {
        let mut g = SharingGraph::new();
        let full = g.add_full_query(0);
        let half = g.add_hcs_query(hcs(0, 3, Direction::Forward));
        let dom = g.add_hcs_query(hcs(5, 2, Direction::Forward));
        g.add_dependency(half, full, 0);
        g.add_dependency(dom, half, 1);
        let order = g.topological_order();
        let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(dom) < pos(half));
        assert!(pos(half) < pos(full));
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn provider_rooted_at_picks_largest_budget() {
        let mut g = SharingGraph::new();
        let user = g.add_hcs_query(hcs(0, 4, Direction::Forward));
        let small = g.add_hcs_query(hcs(7, 1, Direction::Forward));
        let large = g.add_hcs_query(hcs(7, 3, Direction::Forward));
        let other = g.add_hcs_query(hcs(9, 3, Direction::Forward));
        g.add_dependency(small, user, 3);
        g.add_dependency(large, user, 1);
        g.add_dependency(other, user, 1);
        let (found, q) = g.provider_rooted_at(user, VertexId(7)).unwrap();
        assert_eq!(found, large);
        assert_eq!(q.budget, 3);
        assert!(g.provider_rooted_at(user, VertexId(42)).is_none());
    }

    #[test]
    fn anchor_slacks_propagate_through_offsets() {
        // Full query q0(s=0, t=9, k=5): forward half (0,3,G). A dominating query (4,2,G)
        // provides for the half with offset 1.
        let queries = vec![PathQuery::new(0u32, 9u32, 5)];
        let mut g = SharingGraph::new();
        let full = g.add_full_query(0);
        let half = g.add_hcs_query(hcs(0, 3, Direction::Forward));
        let dom = g.add_hcs_query(hcs(4, 2, Direction::Forward));
        g.add_dependency(half, full, 0);
        g.add_dependency(dom, half, 1);

        let slacks = g.anchor_slacks(&queries);
        assert_eq!(
            slacks[half],
            vec![AnchorSlack {
                anchor: VertexId(9),
                slack: 5
            }]
        );
        assert_eq!(
            slacks[dom],
            vec![AnchorSlack {
                anchor: VertexId(9),
                slack: 4
            }]
        );
        assert!(slacks[full].is_empty());
    }

    #[test]
    fn anchor_slacks_keep_the_loosest_constraint_per_anchor() {
        // Two queries with the same target but different k share a dominating provider.
        let queries = vec![PathQuery::new(0u32, 9u32, 4), PathQuery::new(1u32, 9u32, 6)];
        let mut g = SharingGraph::new();
        let f0 = g.add_full_query(0);
        let f1 = g.add_full_query(1);
        let h0 = g.add_hcs_query(hcs(0, 2, Direction::Forward));
        let h1 = g.add_hcs_query(hcs(1, 3, Direction::Forward));
        let dom = g.add_hcs_query(hcs(5, 2, Direction::Forward));
        g.add_dependency(h0, f0, 0);
        g.add_dependency(h1, f1, 0);
        g.add_dependency(dom, h0, 0);
        g.add_dependency(dom, h1, 1);
        let slacks = g.anchor_slacks(&queries);
        // Via h0: slack 4 - 0 = 4; via h1: slack 6 - 1 = 5; the larger one wins.
        assert_eq!(
            slacks[dom],
            vec![AnchorSlack {
                anchor: VertexId(9),
                slack: 5
            }]
        );
    }

    #[test]
    fn backward_half_uses_the_source_as_anchor() {
        let queries = vec![PathQuery::new(3u32, 8u32, 5)];
        let mut g = SharingGraph::new();
        let full = g.add_full_query(0);
        let half = g.add_hcs_query(hcs(8, 2, Direction::Backward));
        g.add_dependency(half, full, 0);
        let slacks = g.anchor_slacks(&queries);
        assert_eq!(
            slacks[half],
            vec![AnchorSlack {
                anchor: VertexId(3),
                slack: 5
            }]
        );
    }
}
