//! `PathEnum` — the state-of-the-art single-query algorithm (§III, ref. \[15\]).
//!
//! Each query is processed in isolation: a per-query index is built with two bounded BFS
//! runs (from `s` on `G` and from `t` on `G^r`), the two index-pruned half searches are
//! run, and the halves are joined by `⊕`. This is the per-query building block reused by
//! `BasicEnum`, and the first baseline of every experiment.

use crate::buffers::SearchBuffers;
use crate::concat::concatenate_scratch;
use crate::query::{PathQuery, QueryId};
use crate::search::SearchContext;
use crate::search_order::SearchOrder;
use crate::sink::PathSink;
use crate::stats::{EnumStats, SearchCounters, Stage};
use hcsp_graph::{DiGraph, Direction};
use hcsp_index::BatchIndex;
use std::time::Instant;

/// Configuration of the single-query algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct PathEnum {
    /// Neighbour expansion order (the "+" variants use [`SearchOrder::DistanceThenDegree`]).
    pub order: SearchOrder,
}

impl PathEnum {
    /// Creates the algorithm with the given search order.
    pub fn new(order: SearchOrder) -> Self {
        PathEnum { order }
    }

    /// Processes one query in isolation: builds the per-query index and enumerates.
    ///
    /// Results are streamed into `sink` under query id `query_id`.
    pub fn run_single<S: PathSink>(
        &self,
        graph: &DiGraph,
        query: &PathQuery,
        query_id: QueryId,
        sink: &mut S,
        stats: &mut EnumStats,
    ) {
        let mut buffers = SearchBuffers::new();
        self.run_single_buffered(graph, query, query_id, sink, stats, &mut buffers);
    }

    /// [`PathEnum::run_single`] with caller-owned, reusable [`SearchBuffers`].
    pub fn run_single_buffered<S: PathSink>(
        &self,
        graph: &DiGraph,
        query: &PathQuery,
        query_id: QueryId,
        sink: &mut S,
        stats: &mut EnumStats,
        buffers: &mut SearchBuffers,
    ) {
        let start = Instant::now();
        let index = BatchIndex::build(graph, &[query.source], &[query.target], query.hop_limit);
        stats.add_stage(Stage::BuildIndex, start.elapsed());
        self.run_with_index_buffered(graph, &index, query, query_id, sink, stats, buffers);
    }

    /// Processes one query against an already-built (possibly shared) index.
    pub fn run_with_index<S: PathSink>(
        &self,
        graph: &DiGraph,
        index: &BatchIndex,
        query: &PathQuery,
        query_id: QueryId,
        sink: &mut S,
        stats: &mut EnumStats,
    ) {
        let mut buffers = SearchBuffers::new();
        self.run_with_index_buffered(graph, index, query, query_id, sink, stats, &mut buffers);
    }

    /// [`PathEnum::run_with_index`] with caller-owned, reusable [`SearchBuffers`]: the
    /// half-search prefix sets, DFS state and join scratch all come from `buffers`, so a
    /// batch loop (or a long-lived worker) allocates nothing per query in the steady
    /// state.
    #[allow(clippy::too_many_arguments)]
    pub fn run_with_index_buffered<S: PathSink>(
        &self,
        graph: &DiGraph,
        index: &BatchIndex,
        query: &PathQuery,
        query_id: QueryId,
        sink: &mut S,
        stats: &mut EnumStats,
        buffers: &mut SearchBuffers,
    ) {
        let start = Instant::now();
        let mut counters = SearchCounters::default();
        let ctx = SearchContext::new(graph, index, self.order);
        // The half-search result sets live in the buffers too; take them out for the
        // duration of the run so the DFS can borrow `buffers` mutably alongside them.
        let mut forward = std::mem::take(&mut buffers.forward);
        let mut backward = std::mem::take(&mut buffers.backward);
        ctx.enumerate_half_into(
            query,
            Direction::Forward,
            &mut counters,
            buffers,
            &mut forward,
        );
        ctx.enumerate_half_into(
            query,
            Direction::Backward,
            &mut counters,
            buffers,
            &mut backward,
        );
        let join = concatenate_scratch(
            &forward,
            &backward,
            query.hop_limit,
            &mut buffers.join,
            |path| {
                sink.accept(query_id, path);
            },
        );
        buffers.forward = forward;
        buffers.backward = backward;
        counters.produced_paths += join.produced as u64;
        stats.counters.merge(&counters);
        stats.add_stage(Stage::Enumeration, start.elapsed());
    }

    /// Processes a whole batch by running every query independently (the `PathEnum` row of
    /// the experiments: no shared index, no shared computation). One [`SearchBuffers`]
    /// instance is reused across the whole batch.
    pub fn run_batch<S: PathSink>(
        &self,
        graph: &DiGraph,
        queries: &[PathQuery],
        sink: &mut S,
    ) -> EnumStats {
        let mut stats = EnumStats::new(queries.len());
        stats.num_clusters = queries.len();
        let mut buffers = SearchBuffers::for_graph(graph);
        for (id, query) in queries.iter().enumerate() {
            self.run_single_buffered(graph, query, id, sink, &mut stats, &mut buffers);
        }
        sink.finish();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::{canonical, enumerate_reference};
    use crate::path::Path;
    use crate::sink::{CollectSink, CountSink};
    use hcsp_graph::generators::erdos_renyi::gnm_random;
    use hcsp_graph::generators::regular::{complete, cycle, grid, layered_dag};

    fn run_collect(graph: &DiGraph, query: PathQuery, order: SearchOrder) -> Vec<Path> {
        let mut sink = CollectSink::new(1);
        let algo = PathEnum::new(order);
        algo.run_batch(graph, &[query], &mut sink);
        sink.paths(0).to_paths()
    }

    fn assert_matches_reference(graph: &DiGraph, query: PathQuery) {
        let expected = canonical(enumerate_reference(graph, &query));
        for order in [SearchOrder::VertexId, SearchOrder::DistanceThenDegree] {
            let got = canonical(run_collect(graph, query, order));
            assert_eq!(got, expected, "query {query} with order {order:?}");
        }
    }

    #[test]
    fn matches_reference_on_structured_graphs() {
        let dag = layered_dag(3, 3);
        let sink_v = (dag.num_vertices() - 1) as u32;
        assert_matches_reference(&dag, PathQuery::new(0u32, sink_v, 4));
        assert_matches_reference(&dag, PathQuery::new(0u32, sink_v, 6));

        let g = grid(3, 4);
        assert_matches_reference(&g, PathQuery::new(0u32, 11u32, 5));
        assert_matches_reference(&g, PathQuery::new(0u32, 11u32, 7));

        let k5 = complete(5);
        assert_matches_reference(&k5, PathQuery::new(0u32, 4u32, 4));

        let c6 = cycle(6);
        assert_matches_reference(&c6, PathQuery::new(2u32, 5u32, 6));
        assert_matches_reference(&c6, PathQuery::new(2u32, 5u32, 2));
    }

    #[test]
    fn matches_reference_on_random_graphs() {
        for seed in 0..4 {
            let g = gnm_random(60, 300, seed).unwrap();
            for (s, t, k) in [(0u32, 7u32, 4u32), (3, 20, 5), (11, 55, 6)] {
                assert_matches_reference(&g, PathQuery::new(s, t, k));
            }
        }
    }

    #[test]
    fn unreachable_queries_return_empty() {
        let g = layered_dag(2, 2);
        // The sink cannot reach the source.
        let q = PathQuery::new((g.num_vertices() - 1) as u32, 0u32, 6);
        assert!(run_collect(&g, q, SearchOrder::VertexId).is_empty());
    }

    #[test]
    fn hop_limit_one_returns_only_direct_edges() {
        let g = complete(4);
        let paths = run_collect(&g, PathQuery::new(0u32, 3u32, 1), SearchOrder::VertexId);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].hops(), 1);
    }

    #[test]
    fn batch_runs_accumulate_stats() {
        let g = complete(5);
        let queries = vec![PathQuery::new(0u32, 4u32, 3), PathQuery::new(1u32, 2u32, 3)];
        let mut sink = CountSink::new(queries.len());
        let stats = PathEnum::default().run_batch(&g, &queries, &mut sink);
        assert_eq!(stats.num_queries, 2);
        assert!(stats.counters.produced_paths >= 2);
        assert_eq!(stats.counters.produced_paths, sink.total());
        assert!(stats.stage_time(Stage::BuildIndex) > std::time::Duration::ZERO);
        assert!(stats.stage_time(Stage::Enumeration) > std::time::Duration::ZERO);
    }
}
