//! `PathEnum` — the state-of-the-art single-query algorithm (§III, ref. \[15\]).
//!
//! Each query is processed in isolation: a per-query index is built with two bounded BFS
//! runs (from `s` on `G` and from `t` on `G^r`), the two index-pruned half searches are
//! run, and the halves are joined by `⊕`. This is the per-query building block reused by
//! `BasicEnum`, and the first baseline of every experiment.
//!
//! ## Execution strategies
//!
//! When the sink is unbounded (classic `Collect`/`Count` semantics) both halves are
//! materialised and joined in one pass — the paper's formulation. When the sink reports a
//! finite [`PathSink::remaining_quota`] (an `Exists` probe, a `FirstK` request, a path
//! budget), the runner switches to a **streaming join**: the smaller (backward) half is
//! materialised and indexed, and the forward DFS joins each prefix the moment it is
//! discovered — the first [`SinkFlow::SkipQuery`] verdict aborts the search outright, so
//! a satisfied query never materialises its forward half at all. Both strategies emit the
//! same paths in the same order (see [`crate::concat`]), so early termination is purely a
//! work saving, never a result change.

use crate::buffers::SearchBuffers;
use crate::concat::{concatenate_scratch, join_prefix, prepare_suffixes, JoinStats};
use crate::query::{PathQuery, QueryId};
use crate::search::{ExpansionMode, SearchContext};
use crate::search_order::SearchOrder;
use crate::sink::{PathSink, SinkFlow};
use crate::stats::{EnumStats, SearchCounters, Stage};
use hcsp_graph::{DiGraph, Direction};
use hcsp_index::BatchIndex;
use std::time::Instant;

/// Configuration of the single-query algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct PathEnum {
    /// Neighbour expansion order (the "+" variants use [`SearchOrder::DistanceThenDegree`]).
    pub order: SearchOrder,
    /// Half-search expansion mechanics (frontier engine vs recursive oracle).
    pub mode: ExpansionMode,
}

impl PathEnum {
    /// Creates the algorithm with the given search order and the default expansion mode.
    pub fn new(order: SearchOrder) -> Self {
        PathEnum {
            order,
            mode: ExpansionMode::default(),
        }
    }

    /// Selects the half-search expansion mode (builder style).
    pub fn with_mode(mut self, mode: ExpansionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Processes one query in isolation: builds the per-query index and enumerates.
    ///
    /// Results are streamed into `sink` under query id `query_id`. Returns the
    /// batch-level control flow ([`SinkFlow::Stop`] when the sink ended the batch).
    pub fn run_single<S: PathSink>(
        &self,
        graph: &DiGraph,
        query: &PathQuery,
        query_id: QueryId,
        sink: &mut S,
        stats: &mut EnumStats,
    ) -> SinkFlow {
        let mut buffers = SearchBuffers::new();
        self.run_single_buffered(graph, query, query_id, sink, stats, &mut buffers)
    }

    /// [`PathEnum::run_single`] with caller-owned, reusable [`SearchBuffers`].
    pub fn run_single_buffered<S: PathSink>(
        &self,
        graph: &DiGraph,
        query: &PathQuery,
        query_id: QueryId,
        sink: &mut S,
        stats: &mut EnumStats,
        buffers: &mut SearchBuffers,
    ) -> SinkFlow {
        // A satisfied query skips even its per-query index build.
        if sink.remaining_quota(query_id) == Some(0) {
            return SinkFlow::Continue;
        }
        let start = Instant::now();
        let index = BatchIndex::build(graph, &[query.source], &[query.target], query.hop_limit);
        stats.add_stage(Stage::BuildIndex, start.elapsed());
        self.run_with_index_buffered(graph, &index, query, query_id, sink, stats, buffers)
    }

    /// Processes one query against an already-built (possibly shared) index.
    pub fn run_with_index<S: PathSink>(
        &self,
        graph: &DiGraph,
        index: &BatchIndex,
        query: &PathQuery,
        query_id: QueryId,
        sink: &mut S,
        stats: &mut EnumStats,
    ) -> SinkFlow {
        let mut buffers = SearchBuffers::new();
        self.run_with_index_buffered(graph, index, query, query_id, sink, stats, &mut buffers)
    }

    /// [`PathEnum::run_with_index`] with caller-owned, reusable [`SearchBuffers`]: the
    /// half-search prefix sets, DFS state and join scratch all come from `buffers`, so a
    /// batch loop (or a long-lived worker) allocates nothing per query in the steady
    /// state.
    ///
    /// Picks the execution strategy from the sink's [`PathSink::remaining_quota`]: a
    /// finite quota runs the early-terminating streaming join, `Some(0)` skips the query
    /// outright, `None` runs the classic materialise-both-halves pipeline.
    #[allow(clippy::too_many_arguments)]
    pub fn run_with_index_buffered<S: PathSink>(
        &self,
        graph: &DiGraph,
        index: &BatchIndex,
        query: &PathQuery,
        query_id: QueryId,
        sink: &mut S,
        stats: &mut EnumStats,
        buffers: &mut SearchBuffers,
    ) -> SinkFlow {
        match sink.remaining_quota(query_id) {
            Some(0) => SinkFlow::Continue,
            Some(_) => self.run_streaming(graph, index, query, query_id, sink, stats, buffers),
            None => self.run_exhaustive(graph, index, query, query_id, sink, stats, buffers),
        }
    }

    /// The classic pipeline: both halves materialised, then joined. The join itself still
    /// honours sink verdicts (a mid-join `SkipQuery` aborts the remaining pairs).
    #[allow(clippy::too_many_arguments)]
    fn run_exhaustive<S: PathSink>(
        &self,
        graph: &DiGraph,
        index: &BatchIndex,
        query: &PathQuery,
        query_id: QueryId,
        sink: &mut S,
        stats: &mut EnumStats,
        buffers: &mut SearchBuffers,
    ) -> SinkFlow {
        let start = Instant::now();
        let mut counters = SearchCounters::default();
        let ctx = SearchContext::new(graph, index, self.order).with_mode(self.mode);
        // The half-search result sets live in the buffers too; take them out for the
        // duration of the run so the DFS can borrow `buffers` mutably alongside them.
        let mut forward = std::mem::take(&mut buffers.forward);
        let mut backward = std::mem::take(&mut buffers.backward);
        ctx.enumerate_half_into(
            query,
            Direction::Forward,
            &mut counters,
            buffers,
            &mut forward,
        );
        ctx.enumerate_half_into(
            query,
            Direction::Backward,
            &mut counters,
            buffers,
            &mut backward,
        );
        let mut flow = SinkFlow::Continue;
        let join = concatenate_scratch(
            &forward,
            &backward,
            query.hop_limit,
            &mut buffers.join,
            |path| {
                flow = sink.accept(query_id, path);
                flow
            },
        );
        buffers.forward = forward;
        buffers.backward = backward;
        counters.produced_paths += join.produced as u64;
        stats.counters.merge(&counters);
        stats.add_stage(Stage::Enumeration, start.elapsed());
        flow.batch_flow()
    }

    /// The early-terminating pipeline: the backward half is materialised and indexed,
    /// the forward DFS joins each discovered prefix immediately, and the first
    /// non-`Continue` sink verdict aborts the search. Emission order is identical to
    /// [`PathEnum::run_exhaustive`].
    #[allow(clippy::too_many_arguments)]
    fn run_streaming<S: PathSink>(
        &self,
        graph: &DiGraph,
        index: &BatchIndex,
        query: &PathQuery,
        query_id: QueryId,
        sink: &mut S,
        stats: &mut EnumStats,
        buffers: &mut SearchBuffers,
    ) -> SinkFlow {
        let start = Instant::now();
        let mut counters = SearchCounters::default();
        let ctx = SearchContext::new(graph, index, self.order).with_mode(self.mode);
        let mut backward = std::mem::take(&mut buffers.backward);
        ctx.enumerate_half_into(
            query,
            Direction::Backward,
            &mut counters,
            buffers,
            &mut backward,
        );
        let mut join_stats = JoinStats::default();
        let flow = if backward.is_empty() {
            // No suffix can ever join: the forward half is pure waste, skip it. (The
            // backward set contains at least the root prefix whenever t is in range, so
            // this only triggers on out-of-range roots.)
            SinkFlow::Continue
        } else {
            let mut join = std::mem::take(&mut buffers.join);
            prepare_suffixes(&backward, &mut join);
            let flow =
                ctx.enumerate_half_with(query, Direction::Forward, &mut counters, buffers, {
                    let backward = &backward;
                    let join = &mut join;
                    let join_stats = &mut join_stats;
                    move |prefix| {
                        join_prefix(
                            prefix,
                            backward,
                            query.hop_limit,
                            join,
                            join_stats,
                            |path| sink.accept(query_id, path),
                        )
                    }
                });
            buffers.join = join;
            flow
        };
        buffers.backward = backward;
        counters.produced_paths += join_stats.produced as u64;
        stats.counters.merge(&counters);
        stats.add_stage(Stage::Enumeration, start.elapsed());
        flow.batch_flow()
    }

    /// Processes a whole batch by running every query independently (the `PathEnum` row of
    /// the experiments: no shared index, no shared computation). One [`SearchBuffers`]
    /// instance is reused across the whole batch. A [`SinkFlow::Stop`] verdict abandons
    /// the remaining queries.
    pub fn run_batch<S: PathSink>(
        &self,
        graph: &DiGraph,
        queries: &[PathQuery],
        sink: &mut S,
    ) -> EnumStats {
        let mut stats = EnumStats::new(queries.len());
        stats.num_clusters = queries.len();
        let mut buffers = SearchBuffers::for_graph(graph);
        for (id, query) in queries.iter().enumerate() {
            let flow = self.run_single_buffered(graph, query, id, sink, &mut stats, &mut buffers);
            if flow.stops_batch() {
                break;
            }
        }
        sink.finish();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::{canonical, enumerate_reference};
    use crate::path::Path;
    use crate::sink::{CollectSink, ControlSink, CountSink};
    use crate::spec::{QuerySpec, SpecSink};
    use hcsp_graph::generators::erdos_renyi::gnm_random;
    use hcsp_graph::generators::regular::{complete, cycle, grid, layered_dag};

    fn run_collect(graph: &DiGraph, query: PathQuery, order: SearchOrder) -> Vec<Path> {
        let mut sink = CollectSink::new(1);
        let algo = PathEnum::new(order);
        algo.run_batch(graph, &[query], &mut sink);
        sink.paths(0).to_paths()
    }

    fn assert_matches_reference(graph: &DiGraph, query: PathQuery) {
        let expected = canonical(enumerate_reference(graph, &query));
        for order in [SearchOrder::VertexId, SearchOrder::DistanceThenDegree] {
            let got = canonical(run_collect(graph, query, order));
            assert_eq!(got, expected, "query {query} with order {order:?}");
        }
    }

    #[test]
    fn matches_reference_on_structured_graphs() {
        let dag = layered_dag(3, 3);
        let sink_v = (dag.num_vertices() - 1) as u32;
        assert_matches_reference(&dag, PathQuery::new(0u32, sink_v, 4));
        assert_matches_reference(&dag, PathQuery::new(0u32, sink_v, 6));

        let g = grid(3, 4);
        assert_matches_reference(&g, PathQuery::new(0u32, 11u32, 5));
        assert_matches_reference(&g, PathQuery::new(0u32, 11u32, 7));

        let k5 = complete(5);
        assert_matches_reference(&k5, PathQuery::new(0u32, 4u32, 4));

        let c6 = cycle(6);
        assert_matches_reference(&c6, PathQuery::new(2u32, 5u32, 6));
        assert_matches_reference(&c6, PathQuery::new(2u32, 5u32, 2));
    }

    #[test]
    fn matches_reference_on_random_graphs() {
        for seed in 0..4 {
            let g = gnm_random(60, 300, seed).unwrap();
            for (s, t, k) in [(0u32, 7u32, 4u32), (3, 20, 5), (11, 55, 6)] {
                assert_matches_reference(&g, PathQuery::new(s, t, k));
            }
        }
    }

    #[test]
    fn unreachable_queries_return_empty() {
        let g = layered_dag(2, 2);
        // The sink cannot reach the source.
        let q = PathQuery::new((g.num_vertices() - 1) as u32, 0u32, 6);
        assert!(run_collect(&g, q, SearchOrder::VertexId).is_empty());
    }

    #[test]
    fn hop_limit_one_returns_only_direct_edges() {
        let g = complete(4);
        let paths = run_collect(&g, PathQuery::new(0u32, 3u32, 1), SearchOrder::VertexId);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].hops(), 1);
    }

    #[test]
    fn streaming_strategy_yields_a_prefix_of_the_exhaustive_order() {
        let g = complete(6);
        let q = PathQuery::new(0u32, 5u32, 4);
        let full = run_collect(&g, q, SearchOrder::VertexId);
        assert!(full.len() > 3);
        for k in [1usize, 2, 3, full.len()] {
            // A bounded SpecSink triggers the streaming strategy.
            let specs = vec![QuerySpec::first_k(q, k)];
            let mut sink = SpecSink::new(&specs);
            let mut stats = EnumStats::new(1);
            PathEnum::default().run_single(&g, &q, 0, &mut sink, &mut stats);
            let responses = sink.into_responses();
            let got = responses[0].paths().unwrap().to_paths();
            assert_eq!(got.as_slice(), &full[..k.min(full.len())], "k = {k}");
        }
    }

    #[test]
    fn early_termination_reports_less_search_work() {
        let g = complete(7);
        let q = PathQuery::new(0u32, 6u32, 5);
        let mut full_stats = EnumStats::new(1);
        let mut full_sink = CountSink::new(1);
        PathEnum::default().run_single(&g, &q, 0, &mut full_sink, &mut full_stats);
        assert!(full_sink.count(0) > 1);

        let specs = vec![QuerySpec::exists(q)];
        let mut sink = SpecSink::new(&specs);
        let mut stats = EnumStats::new(1);
        let flow = PathEnum::default().run_single(&g, &q, 0, &mut sink, &mut stats);
        // The only query is satisfied: batch-level Stop.
        assert_eq!(flow, SinkFlow::Stop);
        assert!(
            stats.counters.expanded_vertices < full_stats.counters.expanded_vertices,
            "exists probe must expand fewer vertices ({} vs {})",
            stats.counters.expanded_vertices,
            full_stats.counters.expanded_vertices
        );
        assert_eq!(stats.counters.produced_paths, 1);
        assert!(sink.into_responses()[0].exists());
    }

    #[test]
    fn zero_quota_queries_are_skipped_without_index_work() {
        let g = complete(4);
        let q = PathQuery::new(0u32, 3u32, 3);
        let specs = vec![QuerySpec::first_k(q, 0)];
        let mut sink = SpecSink::new(&specs);
        let mut stats = EnumStats::new(1);
        let flow = PathEnum::default().run_single(&g, &q, 0, &mut sink, &mut stats);
        assert_eq!(flow, SinkFlow::Continue);
        assert_eq!(stats.counters.expanded_vertices, 0);
        assert_eq!(
            stats.stage_time(Stage::BuildIndex),
            std::time::Duration::ZERO
        );
    }

    #[test]
    fn mid_join_skip_verdicts_abort_the_exhaustive_join_too() {
        let g = complete(6);
        let q = PathQuery::new(0u32, 5u32, 4);
        let full = run_collect(&g, q, SearchOrder::VertexId);
        // An unbounded-quota sink (no hint) that stops after 2 paths mid-join.
        let mut taken = Vec::new();
        let mut stats = EnumStats::new(1);
        {
            let mut sink = ControlSink::new(|_q, p: &[hcsp_graph::VertexId]| {
                taken.push(p.to_vec());
                if taken.len() == 2 {
                    SinkFlow::SkipQuery
                } else {
                    SinkFlow::Continue
                }
            });
            PathEnum::default().run_single(&g, &q, 0, &mut sink, &mut stats);
        }
        assert_eq!(taken.len(), 2);
        assert_eq!(taken[0], full[0].vertices());
        assert_eq!(taken[1], full[1].vertices());
        assert_eq!(stats.counters.produced_paths, 2);
    }

    #[test]
    fn batch_runs_accumulate_stats() {
        let g = complete(5);
        let queries = vec![PathQuery::new(0u32, 4u32, 3), PathQuery::new(1u32, 2u32, 3)];
        let mut sink = CountSink::new(queries.len());
        let stats = PathEnum::default().run_batch(&g, &queries, &mut sink);
        assert_eq!(stats.num_queries, 2);
        assert!(stats.counters.produced_paths >= 2);
        assert_eq!(stats.counters.produced_paths, sink.total());
        assert!(stats.stage_time(Stage::BuildIndex) > std::time::Duration::ZERO);
        assert!(stats.stage_time(Stage::Enumeration) > std::time::Duration::ZERO);
    }

    #[test]
    fn stop_verdict_abandons_the_remaining_batch() {
        let g = complete(5);
        let queries = vec![
            PathQuery::new(0u32, 4u32, 3),
            PathQuery::new(1u32, 2u32, 3),
            PathQuery::new(2u32, 3u32, 3),
        ];
        // Every query is an exists probe: after the last one resolves, Stop fires; the
        // per-query skip logic means each query costs exactly one produced path.
        let specs: Vec<QuerySpec> = queries.iter().map(|&q| QuerySpec::exists(q)).collect();
        let mut sink = SpecSink::new(&specs);
        let stats = PathEnum::default().run_batch(&g, &queries, &mut sink);
        assert_eq!(stats.counters.produced_paths, 3);
        assert!(sink.into_responses().iter().all(|r| r.exists()));
    }
}
