//! The materialised-result cache `R` of Algorithm 4.
//!
//! Every HC-s path query node of Ψ is enumerated exactly once and its paths are kept in
//! the cache until the last user has consumed them (Alg. 4 lines 14–16): the cache tracks
//! a remaining-user count per entry and evicts eagerly, so peak memory is proportional to
//! the "frontier" of the topological evaluation rather than to the whole batch.

use crate::path::PathSet;
use crate::sharing_graph::NodeId;

/// Reference-counted cache of materialised HC-s path query results, keyed by Ψ node id.
#[derive(Debug, Default)]
pub struct ResultCache {
    entries: Vec<Option<CacheEntry>>,
    resident: usize,
    peak_resident: usize,
    total_inserted: usize,
    evicted: usize,
}

#[derive(Debug)]
struct CacheEntry {
    paths: PathSet,
    remaining_users: usize,
}

impl ResultCache {
    /// Creates a cache able to hold results for `num_nodes` Ψ nodes.
    pub fn new(num_nodes: usize) -> Self {
        let mut entries = Vec::with_capacity(num_nodes);
        entries.resize_with(num_nodes, || None);
        ResultCache {
            entries,
            ..Default::default()
        }
    }

    /// Inserts the materialised results of `node`, to be consumed by `num_users` users.
    ///
    /// Entries with zero users are dropped immediately (they can never be read again).
    ///
    /// # Panics
    ///
    /// Panics if `node` already has resident results. Each Ψ node is materialised exactly
    /// once by the topological evaluation (Alg. 4); a second insert means that invariant
    /// broke upstream, and silently overwriting would both leak the first entry's
    /// residency (corrupting `resident`/`peak_resident` accounting) and strand its
    /// remaining users with the wrong path set. The check is a real `assert!` so release
    /// builds fail loudly instead of serving corrupted statistics.
    pub fn insert(&mut self, node: NodeId, paths: PathSet, num_users: usize) {
        if node >= self.entries.len() {
            self.entries.resize_with(node + 1, || None);
        }
        if let Some(existing) = &self.entries[node] {
            panic!(
                "Ψ node {node} materialised twice: {} paths for {} remaining users are \
                 already resident, refusing to overwrite with {} paths for {num_users} users",
                existing.paths.len(),
                existing.remaining_users,
                paths.len(),
            );
        }
        self.total_inserted += 1;
        if num_users == 0 {
            self.evicted += 1;
            return;
        }
        self.entries[node] = Some(CacheEntry {
            paths,
            remaining_users: num_users,
        });
        self.resident += 1;
        self.peak_resident = self.peak_resident.max(self.resident);
    }

    /// The cached paths of `node`, if resident.
    pub fn get(&self, node: NodeId) -> Option<&PathSet> {
        self.entries
            .get(node)
            .and_then(|e| e.as_ref())
            .map(|e| &e.paths)
    }

    /// Whether `node` currently has resident results.
    pub fn contains(&self, node: NodeId) -> bool {
        self.get(node).is_some()
    }

    /// Signals that one user of `node` has finished consuming its results; evicts the
    /// entry when the last user is done. Returns `true` if the entry was evicted.
    pub fn release(&mut self, node: NodeId) -> bool {
        let Some(slot) = self.entries.get_mut(node) else {
            return false;
        };
        let Some(entry) = slot.as_mut() else {
            return false;
        };
        entry.remaining_users = entry.remaining_users.saturating_sub(1);
        if entry.remaining_users == 0 {
            *slot = None;
            self.resident -= 1;
            self.evicted += 1;
            true
        } else {
            false
        }
    }

    /// Number of entries currently resident.
    pub fn resident(&self) -> usize {
        self.resident
    }

    /// Highest number of simultaneously resident entries observed.
    pub fn peak_resident(&self) -> usize {
        self.peak_resident
    }

    /// Number of entries ever inserted.
    pub fn total_inserted(&self) -> usize {
        self.total_inserted
    }

    /// Number of entries evicted (including zero-user immediate drops).
    pub fn evicted(&self) -> usize {
        self.evicted
    }

    /// Total number of paths currently resident (memory pressure metric).
    pub fn resident_paths(&self) -> usize {
        self.entries.iter().flatten().map(|e| e.paths.len()).sum()
    }

    /// Approximate heap footprint of the resident results in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.entries
            .iter()
            .flatten()
            .map(|e| e.paths.heap_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcsp_graph::VertexId;

    fn path_set(paths: &[&[u32]]) -> PathSet {
        let mut set = PathSet::new();
        for p in paths {
            let vs: Vec<VertexId> = p.iter().map(|&x| VertexId(x)).collect();
            set.push_slice(&vs);
        }
        set
    }

    #[test]
    fn insert_get_release_cycle() {
        let mut cache = ResultCache::new(4);
        cache.insert(2, path_set(&[&[1, 2], &[1, 3]]), 2);
        assert!(cache.contains(2));
        assert_eq!(cache.get(2).unwrap().len(), 2);
        assert_eq!(cache.resident(), 1);
        assert_eq!(cache.resident_paths(), 2);
        assert!(cache.heap_bytes() > 0);

        assert!(!cache.release(2), "first release keeps the entry");
        assert!(cache.contains(2));
        assert!(cache.release(2), "second release evicts");
        assert!(!cache.contains(2));
        assert_eq!(cache.resident(), 0);
        assert_eq!(cache.evicted(), 1);
        assert_eq!(cache.peak_resident(), 1);
    }

    #[test]
    fn zero_user_entries_are_dropped_immediately() {
        let mut cache = ResultCache::new(2);
        cache.insert(0, path_set(&[&[1]]), 0);
        assert!(!cache.contains(0));
        assert_eq!(cache.total_inserted(), 1);
        assert_eq!(cache.evicted(), 1);
        assert_eq!(cache.peak_resident(), 0);
    }

    #[test]
    fn peak_tracks_simultaneous_residency() {
        let mut cache = ResultCache::new(3);
        cache.insert(0, path_set(&[&[1]]), 1);
        cache.insert(1, path_set(&[&[2]]), 1);
        assert_eq!(cache.peak_resident(), 2);
        cache.release(0);
        cache.insert(2, path_set(&[&[3]]), 1);
        assert_eq!(cache.resident(), 2);
        assert_eq!(cache.peak_resident(), 2);
    }

    #[test]
    fn release_of_missing_entries_is_harmless() {
        let mut cache = ResultCache::new(1);
        assert!(!cache.release(0));
        assert!(!cache.release(99));
        assert_eq!(cache.get(99), None);
    }

    #[test]
    #[should_panic(expected = "materialised twice")]
    fn double_materialisation_panics_in_every_build_profile() {
        // A plain `assert`-style check, not `debug_assert`: this test is meaningful under
        // `--release` too, where the old guard compiled away and the second insert would
        // silently overwrite the entry and corrupt the residency accounting.
        let mut cache = ResultCache::new(2);
        cache.insert(1, path_set(&[&[1, 2]]), 2);
        cache.insert(1, path_set(&[&[3, 4]]), 1);
    }

    #[test]
    fn accounting_survives_an_attempted_double_insert() {
        let mut cache = ResultCache::new(2);
        cache.insert(1, path_set(&[&[1, 2]]), 1);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.insert(1, path_set(&[&[3, 4]]), 1);
        }));
        assert!(outcome.is_err());
        // The first entry is untouched and the counters did not double-count.
        assert_eq!(cache.resident(), 1);
        assert_eq!(cache.peak_resident(), 1);
        assert_eq!(cache.total_inserted(), 1);
        assert_eq!(cache.get(1).unwrap().len(), 1);
        assert!(cache.release(1), "the original refcount still drains");
        assert_eq!(cache.resident(), 0);
    }

    #[test]
    fn cache_grows_for_out_of_range_nodes() {
        let mut cache = ResultCache::new(1);
        cache.insert(7, path_set(&[&[4, 5]]), 1);
        assert!(cache.contains(7));
    }
}
