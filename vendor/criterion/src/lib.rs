//! Offline, API-compatible subset of `criterion` (0.5 line).
//!
//! Implements the surface the `hcsp-bench` targets use — `criterion_group!` /
//! `criterion_main!`, benchmark groups, [`BenchmarkId`], [`Bencher::iter`] —
//! backed by a plain wall-clock runner: a warm-up pass, then `sample_size`
//! timed samples of an adaptively chosen iteration batch, reporting
//! median/min/max per-iteration time to stdout. No statistics engine, no
//! plots, no `target/criterion` reports; swap in the real crate when registry
//! access exists to get those back. Honors `--bench <filter>` style substring
//! filters passed by `cargo bench -- <filter>`, and mirrors criterion's test
//! mode: when invoked without `--bench` (e.g. by `cargo test --benches`),
//! every benchmark routine runs exactly once as a smoke test instead of being
//! sampled.

#![warn(rust_2018_idioms)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver: configuration plus the CLI filter.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes `--bench` plus any user filter; everything that
        // is not a flag (or a flag argument) is treated as a name filter,
        // mirroring criterion's CLI.
        let mut filter = None;
        // Like the real criterion: `cargo bench` passes `--bench` and enables sampling;
        // any other invocation (`cargo test --benches` passes nothing, `--test` forces
        // it) runs every benchmark exactly once as a smoke test.
        let mut bench_mode = false;
        let mut test_mode = false;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--bench" => bench_mode = true,
                "--test" => test_mode = true,
                "--nocapture" | "--quiet" | "-q" => {}
                "--sample-size" | "--measurement-time" | "--warm-up-time" => {
                    let _ = args.next();
                }
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(400),
            filter,
            test_mode: test_mode || !bench_mode,
        }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Set the target total measurement time per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into_benchmark_id().full;
        self.run_one(&name, f);
    }

    fn run_one<F: FnMut(&mut Bencher)>(&self, name: &str, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            samples: Vec::new(),
            test_mode: self.test_mode,
        };
        f(&mut bencher);
        if self.test_mode {
            println!("Testing {name}: ok");
        } else {
            bencher.report(name);
        }
    }
}

/// A group of benchmarks sharing a name prefix (subset of criterion's groups).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run `f` as the benchmark `group/id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().full);
        self.criterion.run_one(&full, f);
    }

    /// Run `f` with `input` as the benchmark `group/id`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: impl IntoBenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().full);
        self.criterion.run_one(&full, |b| f(b, input));
    }

    /// Override the sample count for the rest of this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.criterion.sample_size = n;
        self
    }

    /// Override the measurement time for the rest of this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Identify by function name and parameter, rendered `name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{function_name}/{parameter}"),
        }
    }

    /// Identify by parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// Conversion into [`BenchmarkId`], so `&str`/`String` work where ids do.
pub trait IntoBenchmarkId {
    /// Perform the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            full: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { full: self }
    }
}

/// Times closures handed to it by the benchmark body.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    samples: Vec<Duration>,
    test_mode: bool,
}

impl Bencher {
    /// Measure `routine`, running it enough times per sample to out-resolve
    /// the clock, for `sample_size` samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Test mode (`cargo test --benches`): one verification run, no sampling.
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up + batch sizing: time one call, pick a batch so each sample
        // spans >= ~1/sample_size of the measurement budget (>= 1 iteration).
        let warm_start = Instant::now();
        black_box(routine());
        let once = warm_start.elapsed().max(Duration::from_nanos(1));
        let per_sample = self.measurement_time / self.sample_size as u32;
        let batch = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed / batch as u32);
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<60} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        println!(
            "{name:<60} time: [{} {} {}]",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(max)
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Define a named group of benchmark targets (both criterion forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define `main()` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("group");
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        c.bench_function(BenchmarkId::from_parameter("free"), |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn runner_smoke() {
        let mut criterion = Criterion {
            sample_size: 2,
            measurement_time: Duration::from_millis(2),
            filter: None,
            test_mode: false,
        };
        sample_bench(&mut criterion);
    }

    #[test]
    fn test_mode_runs_each_routine_exactly_once() {
        let mut criterion = Criterion {
            sample_size: 2,
            measurement_time: Duration::from_millis(2),
            filter: None,
            test_mode: true,
        };
        let count = std::cell::Cell::new(0u32);
        criterion.bench_function("smoke", |b| b.iter(|| count.set(count.get() + 1)));
        assert_eq!(
            count.get(),
            1,
            "test mode must run the routine exactly once"
        );
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut criterion = Criterion {
            sample_size: 2,
            measurement_time: Duration::from_millis(2),
            filter: Some("definitely-not-present".into()),
            test_mode: false,
        };
        // Routine would run forever if not filtered out; skipping proves the
        // filter path (no iter() call happens).
        criterion.bench_function("other", |_b| panic!("should have been filtered"));
    }
}
