//! Offline, API-compatible subset of the `rand` crate (0.8 line).
//!
//! The build environment for this repository has no registry access, so the
//! workspace vendors the small slice of `rand` it actually uses:
//!
//! * [`rngs::StdRng`] — a deterministic 64-bit PRNG (xoshiro256** seeded via
//!   SplitMix64, the same construction the real `rand` documents for cheap
//!   seeding).
//! * [`SeedableRng::seed_from_u64`] — the only seeding entry point the
//!   generators and workload builders call.
//! * [`Rng::gen_range`] / [`Rng::gen_bool`] over integer and float ranges.
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`].
//!
//! Determinism contract: for a fixed seed the byte-for-byte output stream is
//! stable across platforms and releases of this vendored crate. The graph
//! generator smoke tests (`tests/integration_generators.rs` at the workspace
//! root) pin that contract.

#![warn(rust_2018_idioms)]

use core::ops::{Range, RangeInclusive};

/// A low-level source of random `u64`s (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Return the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Return the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;

    /// Create a generator from OS entropy. The vendored stub has no OS entropy
    /// source; it derives a seed from the monotonic clock address-space noise
    /// available without any syscall dependencies.
    fn from_entropy() -> Self {
        // No getrandom in the offline stub: mix the address of a stack local
        // with a process-global counter. Good enough for the few non-seeded
        // call sites (none in-tree today).
        use core::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0x9e37_79b9_7f4a_7c15);
        let local = 0u8;
        let mixed = (&local as *const u8 as u64).wrapping_mul(0x2545_f491_4f6c_dd1d)
            ^ COUNTER.fetch_add(0x6a09_e667_f3bc_c909, Ordering::Relaxed);
        Self::seed_from_u64(mixed)
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// Panics if the range is empty, matching the real crate.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        // 53 high bits -> uniform double in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Range types [`Rng::gen_range`] accepts (subset of `rand::distributions::uniform`).
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Multiply-shift (Lemire) bounded sampling over the 64-bit stream;
                // bias is < 2^-64 per draw, irrelevant for test workloads, and the
                // mapping is a pure function of the stream so determinism holds.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start + hi
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end as u128) - (start as u128) + 1;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                start + hi
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                let off = (Range::<$u> { start: 0, end: span }).sample_single(rng);
                self.start.wrapping_add(off as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as $u).wrapping_sub(start as $u);
                if span == <$u>::MAX {
                    return rng.next_u64() as $t;
                }
                let off = (RangeInclusive::<$u>::new(0, span)).sample_single(rng);
                start.wrapping_add(off as $t)
            }
        }
    )*};
}

impl_signed_sample_range!(i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as $t * (1.0 / ((1u64 << 53) - 1) as $t);
                start + unit * (end - start)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`: xoshiro256** with
    /// SplitMix64 seed expansion. Not cryptographic — neither is the use.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers (subset of `rand::seq`).

    use super::{Rng, RngCore};

    /// Slice extensions: uniform choice and Fisher–Yates shuffle.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Uniformly pick one element, or `None` on an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffle in place (Fisher–Yates, identical order for identical seeds).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

/// Re-export mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = rng.gen_range(5..=5);
            assert_eq!(y, 5);
            let f: f64 = rng.gen_range(0.25..=0.75);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut w = v.clone();
        v.shuffle(&mut StdRng::seed_from_u64(1));
        w.shuffle(&mut StdRng::seed_from_u64(1));
        assert_eq!(v, w);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
