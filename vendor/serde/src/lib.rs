//! Offline, API-compatible subset of `serde` (1.x line).
//!
//! This workspace derives `Serialize`/`Deserialize` on its value types as the
//! public-API contract for *future* wire formats, but no in-tree code actually
//! serialises anything (there is no `serde_json`/`bincode` in the build
//! environment). So the traits here are pure markers, blanket-implemented for
//! every type, and the derives (re-exported from the vendored `serde_derive`)
//! expand to nothing. When registry access exists, swapping the real serde in
//! is source-compatible: every `#[derive(Serialize, Deserialize)]` is already
//! in place.

#![warn(rust_2018_idioms)]

/// Marker standing in for `serde::Serialize`.
///
/// Blanket-implemented for all types; see the crate docs for the rationale.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker standing in for `serde::Deserialize<'de>`.
///
/// Blanket-implemented for all types; see the crate docs for the rationale.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: ?Sized> DeserializeOwned for T {}

/// Mirror of `serde::de` for path compatibility.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Mirror of `serde::ser` for path compatibility.
pub mod ser {
    pub use crate::Serialize;
}

pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    // The derives must parse on the shapes this workspace uses: unit enums
    // with discriminants-by-position, tuple structs, and field structs.
    #[derive(super::Serialize, super::Deserialize)]
    #[allow(dead_code)]
    struct Tuple(u32, u64);

    #[derive(super::Serialize, super::Deserialize)]
    struct Fields {
        _a: Vec<u8>,
        _b: Option<String>,
    }

    #[derive(super::Serialize, super::Deserialize)]
    enum Algo {
        _A,
        _B,
    }

    fn assert_bounds<T: super::Serialize + super::DeserializeOwned>() {}

    #[test]
    fn derived_types_satisfy_bounds() {
        assert_bounds::<Tuple>();
        assert_bounds::<Fields>();
        assert_bounds::<Algo>();
    }
}
