//! Offline stand-in for `serde_derive`.
//!
//! The vendored `serde` crate blanket-implements its `Serialize`/`Deserialize`
//! marker traits for all types (see `vendor/serde/src/lib.rs` for why that is
//! sound here), so the derive macros only need to *exist* and expand to
//! nothing for `#[derive(Serialize, Deserialize)]` and the occasional
//! `#[serde(...)]` helper attribute to compile.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`; the trait impl comes from serde's blanket impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`; the trait impl comes from serde's blanket impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
