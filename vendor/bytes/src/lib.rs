//! Offline, API-compatible subset of the `bytes` crate (1.x line).
//!
//! [`Bytes`] here is a plain owned buffer rather than a refcounted slice — the
//! zero-copy sharing of the real crate is an optimisation, not an API
//! contract, and nothing in this workspace splits or clones buffers on hot
//! paths. [`Buf`]/[`BufMut`] carry exactly the cursor and little-endian
//! accessors `hcsp-graph::io` uses.

#![warn(rust_2018_idioms)]

use std::ops::{Deref, DerefMut};

/// A cheaply passable, immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
    /// Read cursor for the [`Buf`] impl.
    pos: usize,
}

impl Bytes {
    /// The empty buffer.
    pub const fn new() -> Self {
        Bytes {
            data: Vec::new(),
            pos: 0,
        }
    }

    /// Copy `data` into an owned buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    /// Unconsumed length in bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// `true` if no unconsumed bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy the unconsumed bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }

    /// View of the unconsumed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

/// A growable byte buffer; freeze it into [`Bytes`] when done writing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// The empty buffer.
    pub const fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Pre-allocate `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read side: a cursor over bytes with little-endian integer accessors.
///
/// Each `get_*` consumes from the front and panics when the buffer is short,
/// matching the real crate; callers guard with [`Buf::remaining`].
pub trait Buf {
    /// Number of bytes left to consume.
    fn remaining(&self) -> usize;

    /// View of the unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Drop `cnt` bytes from the front.
    fn advance(&mut self, cnt: usize);

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Consume four bytes as a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().expect("buffer underflow"));
        self.advance(4);
        v
    }

    /// Consume eight bytes as a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().expect("buffer underflow"));
        self.advance(8);
        v
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.pos += cnt;
    }
}

/// Write side: append bytes and little-endian integers.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a `u32` in little-endian order.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a `u64` in little-endian order.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le_integers() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u64_le(0x0123_4567_89ab_cdef);
        buf.put_u32_le(0xdead_beef);
        buf.put_u8(7);
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 13);

        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u64_le(), 0x0123_4567_89ab_cdef);
        assert_eq!(cursor.get_u32_le(), 0xdead_beef);
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn slice_buf_advance() {
        let data = [1u8, 2, 3, 4];
        let mut cursor: &[u8] = &data;
        cursor.advance(2);
        assert_eq!(cursor.remaining(), 2);
        assert_eq!(cursor.chunk(), &[3, 4]);
    }

    #[test]
    fn bytes_indexing_and_vec() {
        let b = Bytes::copy_from_slice(b"hello world");
        assert_eq!(&b[..5], b"hello");
        assert_eq!(b.to_vec(), b"hello world".to_vec());
    }
}
