//! Offline, API-compatible subset of `parking_lot` (0.12 line).
//!
//! Backed by `std::sync` primitives with poisoning stripped, which is the
//! user-visible contract this workspace relies on: `lock()` returns a guard
//! directly (no `Result`), and a panicked holder does not poison the lock for
//! the survivors. Performance is whatever `std::sync::Mutex` gives — fine for
//! the worker-pool flush paths in `hcsp-core::parallel`; swap in the real
//! crate when registry access exists if lock contention ever shows up in
//! profiles.

#![warn(rust_2018_idioms)]

use std::fmt;
use std::sync::TryLockError;

/// Guard for [`Mutex::lock`]; releases on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex and return the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is acquired.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock with the same poison-free contract as [`Mutex`].
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new unlocked rwlock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock and return the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Block until a shared read guard is acquired.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Block until the exclusive write guard is acquired.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock is usable afterwards.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
