//! The [`Strategy`] trait and the combinators the workspace tests use.
//!
//! A strategy here is just a deterministic sampler: `generate(rng)` draws one
//! value. There is no value tree and no shrinking (see the crate docs).

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A source of random values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Keep only values satisfying `pred`, re-drawing otherwise.
    ///
    /// `_whence` mirrors the real API's diagnostic label. Panics after 1000
    /// consecutive rejections instead of the real crate's global rejection
    /// bookkeeping.
    fn prop_filter<F>(self, _whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence: _whence,
            pred,
        }
    }
}

/// Strategy that always yields a clone of its value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let value = self.source.generate(rng);
            if (self.pred)(&value) {
                return value;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive values: {}",
            self.whence
        );
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
