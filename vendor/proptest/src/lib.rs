//! Offline, API-compatible subset of `proptest` (1.x line).
//!
//! Covers what `tests/prop_correctness.rs` uses: range and tuple strategies,
//! [`collection::vec`], [`Just`], `prop_map`/`prop_flat_map`, the
//! [`proptest!`] macro with `#![proptest_config(..)]`, and the
//! `prop_assert*` macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the seed, case index, and the
//!   assertion message, not a minimised input. The generated inputs here are
//!   already small (≤ 28 vertices) by construction of the test strategies.
//! * **Deterministic by default.** Every test function derives its RNG seed
//!   from its own name (FNV-1a), so CI runs are reproducible without
//!   regression files. Set `PROPTEST_SEED=<u64>` to explore a different
//!   sequence, and `PROPTEST_CASES=<n>` to override the case count.

#![warn(rust_2018_idioms)]

use std::fmt;

pub mod strategy;

pub use strategy::{Just, Strategy};

/// Runtime configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
    /// Accepted for source compatibility; regression persistence is not
    /// implemented (runs are deterministic instead).
    pub failure_persistence: Option<()>,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
            failure_persistence: None,
        }
    }
}

impl ProptestConfig {
    /// Shorthand: default config with the given case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// A failed property: carries the `prop_assert*` message.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure from a rendered message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

pub mod test_runner {
    //! The deterministic per-test RNG and env-var plumbing.

    pub use rand::prelude::*;

    /// RNG handed to strategies; one per test function run.
    pub type TestRng = rand::rngs::StdRng;

    /// Derive the seed for a test function: `PROPTEST_SEED` if set, else
    /// FNV-1a of the test name (stable across runs and platforms).
    pub fn seed_for(test_name: &str) -> u64 {
        if let Ok(seed) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = seed.parse() {
                return seed;
            }
        }
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// Apply the `PROPTEST_CASES` override to a configured case count.
    pub fn effective_cases(configured: u32) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(configured)
    }
}

pub mod collection {
    //! Collection strategies (subset: `vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Size bounds for [`vec`](fn@vec); converts from `a..b` and `a..=b`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max_inclusive: exact,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors of values drawn from `element`, sized within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a proptest-based test usually imports.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, TestCaseError};
}

/// Define property tests. Supports the subset of the real macro's grammar this
/// workspace uses: an optional `#![proptest_config(expr)]` header followed by
/// `fn name(pat in strategy, ...) { body }` items carrying outer attributes
/// (including `#[test]` itself).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let cases = $crate::test_runner::effective_cases(config.cases);
                let seed = $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name)));
                let mut rng =
                    <$crate::test_runner::TestRng as $crate::test_runner::SeedableRng>::seed_from_u64(seed);
                for case in 0..cases {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                    #[allow(unused_mut)]
                    let mut run_case =
                        || -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        };
                    if let ::std::result::Result::Err(err) = run_case() {
                        panic!(
                            "proptest case {}/{} failed (seed {}): {}",
                            case + 1,
                            cases,
                            seed,
                            err
                        );
                    }
                }
            }
        )*
    };
}

/// Fail the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair_strategy() -> impl Strategy<Value = (u32, Vec<u32>)> {
        (1u32..=8).prop_flat_map(|n| (Just(n), crate::collection::vec(0..n, 0..=16usize)))
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 50, .. ProptestConfig::default() })]

        /// Generated values respect the strategy bounds.
        #[test]
        fn vec_elements_stay_in_range((n, items) in pair_strategy()) {
            prop_assert!(items.len() <= 16);
            for &item in &items {
                prop_assert!(item < n, "item {} out of range 0..{}", item, n);
            }
        }

        /// Mapped strategies apply their function.
        #[test]
        fn map_applies(doubled in (0u32..100).prop_map(|x| x * 2)) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert_ne!(doubled, 1);
        }

        /// Multiple bindings plus a float range in one signature.
        #[test]
        fn multi_binding(x in 0usize..10, f in 0.0f64..=1.0) {
            prop_assert!(x < 10);
            prop_assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn failures_panic_with_seed() {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 1, .. ProptestConfig::default() })]
            #[allow(dead_code)]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 1000, "x was {}", x);
            }
        }
        let outcome = std::panic::catch_unwind(always_fails);
        let message = *outcome.unwrap_err().downcast::<String>().unwrap();
        assert!(message.contains("seed"), "panic message: {message}");
    }
}
