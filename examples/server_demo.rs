//! Network front-end demo: start a [`PathServer`] on loopback, speak the text query
//! language over TCP, interleave a graph update, and finish with a short load-generator
//! run that reports tail latency.
//!
//! ```text
//! cargo run --example server_demo
//! ```

// Stdout is the product here: examples narrate what they compute.
#![allow(clippy::print_stdout)]

use hcsp::prelude::*;
use hcsp::server::run_load;
use hcsp::workload::ArrivalProcess;
use std::sync::Arc;

fn main() {
    // A small diamond-with-chords graph: several 0 → 5 paths of different lengths.
    let graph = DiGraph::from_edge_list(
        6,
        &[
            (0, 1),
            (0, 2),
            (1, 3),
            (2, 3),
            (1, 4),
            (3, 5),
            (4, 5),
            (2, 5),
        ],
    )
    .expect("static edge list is valid");

    // `immediate()` keeps FirstK answers batch-independent, which makes a demo's
    // output deterministic; a production deployment would use `by_size`.
    let service = Arc::new(
        PathService::builder()
            .workers(2)
            .policy(BatchPolicy::immediate())
            .start(graph)
            .expect("in-memory service start cannot fail"),
    );
    let server = PathServer::bind(
        Arc::clone(&service),
        ("127.0.0.1", 0),
        ServerConfig::default(),
    )
    .expect("bind a loopback listener");
    println!("serving on {}", server.local_addr());

    let mut client = Client::connect(server.local_addr()).expect("connect");
    let script = [
        "EXISTS FROM 0 TO 5 WITHIN 4",
        "COUNT FROM 0 TO 5 WITHIN 4",
        "PATHS FROM 0 TO 5 WITHIN 4 LIMIT 3",
        "DELETE EDGE 2 5",
        "COUNT FROM 0 TO 5 WITHIN 4",
        "INSERT EDGE 2 5",
        "COUNT FROM 0 TO 5 WITHIN 4",
        "PATHS FROM 9 TO 5 WITHIN 4", // refused: vertex 9 is out of range
    ];
    for statement in script {
        match client.request(statement) {
            Ok(Reply::Exists(yes)) => println!("{statement:<34} -> exists: {yes}"),
            Ok(Reply::Count(n)) => println!("{statement:<34} -> {n} paths"),
            Ok(Reply::Paths(paths)) => {
                println!("{statement:<34} -> {} paths", paths.len());
                for p in paths {
                    println!("{:>38} {p:?}", "");
                }
            }
            Ok(Reply::Update { applied, ignored }) => {
                println!("{statement:<34} -> applied {applied}, ignored {ignored}");
            }
            Ok(Reply::Error { code, message }) => {
                println!("{statement:<34} -> refused ({code:?}): {message}");
            }
            Err(err) => panic!("transport failure on {statement:?}: {err}"),
        }
    }
    drop(client);

    // A short open-loop run through the same listener: 64 mixed statements arriving
    // as a Poisson process, answered in order on one pipelined connection.
    let statements: Vec<String> = (0..64)
        .map(|i| match i % 4 {
            0 => "PATHS FROM 0 TO 5 WITHIN 4 LIMIT 2".to_string(),
            1 => "EXISTS FROM 0 TO 5 WITHIN 4".to_string(),
            2 => "COUNT FROM 0 TO 5 WITHIN 4".to_string(),
            _ => format!("INSERT EDGE {} {}", i % 6, (i + 3) % 6),
        })
        .collect();
    let arrivals = ArrivalProcess::Poisson { rate_qps: 2_000.0 };
    let report = run_load(server.local_addr(), &statements, &arrivals, 42).expect("load run");
    println!(
        "load: {} requests, p50 {:?}, p99 {:?}, {:.0} replies/s",
        report.replies.len(),
        report.p50(),
        report.p99(),
        report.qps(),
    );

    server.shutdown();
    let stats = Arc::try_unwrap(service)
        .expect("all clients disconnected")
        .shutdown();
    println!(
        "service saw {} queries in {} batches, {} update batches",
        stats.num_queries, stats.num_batches, stats.update_batches
    );
}
