//! Service demo: a long-lived `PathService` forming shared micro-batches from a query
//! stream, compared against per-query serving of the exact same stream.
//!
//! ```bash
//! cargo run --release --example service_demo
//! ```

// Stdout is the product here: examples narrate what they compute.
#![allow(clippy::print_stdout)]

use hcsp::prelude::*;
use hcsp::workload::{similar_query_set, ArrivalProcess, Dataset, DatasetScale, QuerySetSpec};
use std::time::Duration;

fn main() {
    // A social-network analog and a similarity-heavy query stream: many users asking
    // about overlapping regions of the graph within a short time span.
    let graph = Dataset::EP.build(DatasetScale::Tiny);
    println!(
        "graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );
    let queries = similar_query_set(&graph, QuerySetSpec::new(32, 9).with_hops(3, 4), 0.6);
    // Poisson arrivals at 2000 queries/second — bursty enough that an admission window
    // catches co-arriving queries.
    let schedule = ArrivalProcess::Poisson { rate_qps: 2000.0 }.schedule(&queries, 7);

    for (name, policy) in [
        ("per-query (deadline 0)", BatchPolicy::immediate()),
        (
            "micro-batched (≤16 queries / 5 ms window)",
            BatchPolicy::by_size(16, Duration::from_millis(5)),
        ),
    ] {
        let service = PathService::builder()
            .policy(policy)
            .start(graph.clone())
            .unwrap();
        let handles = service.replay(schedule.iter().cloned());
        let total_paths: usize = handles.into_iter().map(|h| h.wait().paths.len()).sum();
        let uptime = service.uptime();
        let stats = service.shutdown();

        println!("\n=== {name} ===");
        println!("queries served     : {}", stats.num_queries);
        println!("paths delivered    : {total_paths}");
        println!("micro-batches      : {}", stats.num_batches);
        println!("mean batch size    : {:.1}", stats.mean_batch_size());
        println!("sharing ratio      : {:.2}", stats.sharing_ratio());
        println!("mean queue wait    : {:?}", stats.mean_queue_wait());
        println!("max queue wait     : {:?}", stats.max_queue_wait);
        println!("service exec time  : {:?}", stats.total_exec_time);
        println!(
            "throughput         : {:.0} q/s",
            stats.throughput_qps(uptime)
        );
    }

    println!("\nSame stream, same results — the policy only changes how much work is shared.");
}
