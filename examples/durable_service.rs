//! Durable service demo: a `PathService` whose graph updates survive restarts.
//!
//! Every acknowledged update batch is appended to a CRC-framed write-ahead log before
//! it is published to queries; checkpoints fold the log into a snapshot so restarts
//! replay only the tail. This demo writes through a real directory, "restarts" by
//! dropping and reopening the service, and prints what recovery found each time.
//!
//! ```bash
//! cargo run --release --example durable_service
//! ```

// Stdout is the product here: examples narrate what they compute.
#![allow(clippy::print_stdout)]

use hcsp::prelude::*;
use hcsp::workload::{Dataset, DatasetScale};

fn main() {
    let dir = std::env::temp_dir().join(format!("hcsp-durable-demo-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create demo directory");
    println!("store directory: {}", dir.display());

    // A social-network analog; the service starts durable, so the initial graph is
    // snapshotted before the first query is admitted.
    let graph = Dataset::EP.build(DatasetScale::Tiny);
    println!(
        "graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );
    let probe = PathQuery::new(0u32, 7u32, 4);

    let service = PathService::builder()
        .durability(DurabilityOptions::directory(&dir))
        .start(graph.clone())
        .expect("create durable service");
    let before = service.submit(probe).wait().paths.len();

    // Mutate the graph: every batch is logged (fsync'd, `FsyncPolicy::Always` is the
    // default) before its UpdateHandle resolves.
    for batch in [
        vec![
            GraphUpdate::insert(0u32, 170u32),
            GraphUpdate::insert(170u32, 7u32),
        ],
        vec![GraphUpdate::delete(0u32, 170u32)],
        vec![GraphUpdate::insert(0u32, 170u32)],
    ] {
        service.update(batch).wait();
    }
    let after = service.submit(probe).wait().paths.len();
    println!("\npaths for {probe}: {before} before the updates, {after} after");
    drop(service); // "crash": no checkpoint was taken, the whole tail must replay

    // Restart #1: recovery = newest snapshot + WAL tail replay.
    let service = PathService::open(&dir).expect("reopen durable service");
    let report = service
        .recovery()
        .expect("reopened services carry a report");
    println!(
        "\nrestart #1: snapshot had {} batches, replayed {} batches / {} updates from {} log file(s)",
        report.snapshot_batches, report.replayed_batches, report.replayed_updates, report.wal_files
    );
    let recovered = service.submit(probe).wait().paths.len();
    assert_eq!(
        recovered, after,
        "recovery must serve the exact pre-crash graph"
    );
    println!("paths for {probe} after recovery: {recovered} (identical)");

    // Checkpoint: fold the tail into a fresh snapshot, truncate the log.
    let installed = service.checkpoint().expect("checkpoint");
    println!("\ncheckpoint installed: {installed}");
    drop(service);

    // Restart #2: the tail is empty now — recovery is a snapshot load, no replay.
    let service = PathService::open(&dir).expect("reopen after checkpoint");
    let report = service.recovery().expect("report");
    println!(
        "restart #2: snapshot had {} batches, replayed {} (the checkpoint emptied the tail)",
        report.snapshot_batches, report.replayed_batches
    );
    assert_eq!(report.replayed_batches, 0);
    assert_eq!(service.submit(probe).wait().paths.len(), after);
    service.shutdown();

    std::fs::remove_dir_all(&dir).expect("clean up demo directory");
    println!("\ndone; store directory removed");
}
