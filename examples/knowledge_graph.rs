//! Knowledge-graph completion support (the paper's third motivating application).
//!
//! Link-prediction models score a candidate relation between two entities using the short
//! paths connecting them: entity pairs connected by many short paths are more likely to be
//! related. Because a completion job scores *many* candidate pairs at once, the path
//! feature extraction is a batch of HC-s-t path queries — and candidate pairs around the
//! same "hub" entities share most of their exploration, which is exactly the sharing
//! BatchEnum exploits.
//!
//! ```bash
//! cargo run --release --example knowledge_graph
//! ```

// Stdout is the product here: examples narrate what they compute.
#![allow(clippy::print_stdout)]

use hcsp::prelude::*;
use hcsp::workload::{Dataset, DatasetScale};

/// Path-count features extracted for one candidate entity pair.
#[derive(Debug, Default, Clone)]
struct PairFeatures {
    /// Number of connecting simple paths per hop count (index = hops).
    paths_by_length: Vec<u64>,
}

impl PairFeatures {
    fn total(&self) -> u64 {
        self.paths_by_length.iter().sum()
    }

    /// A simple relatedness score: shorter connecting paths count more.
    fn score(&self) -> f64 {
        self.paths_by_length
            .iter()
            .enumerate()
            .skip(1)
            .map(|(hops, &count)| count as f64 / (hops as f64))
            .sum()
    }
}

fn main() {
    // The Baidu-baike analog stands in for an encyclopedia-derived knowledge graph.
    let kg = Dataset::BK.build(DatasetScale::Tiny);
    println!(
        "knowledge graph: {} entities, {} relations",
        kg.num_vertices(),
        kg.num_edges()
    );

    // Candidate entity pairs to score: pairs around a few hub entities (the realistic
    // completion workload — many candidates share one endpoint).
    let hop_limit = 4;
    let hubs: Vec<VertexId> = {
        let mut by_degree: Vec<VertexId> = kg.vertices().collect();
        by_degree.sort_by_key(|&v| std::cmp::Reverse(kg.out_degree(v) + kg.in_degree(v)));
        by_degree.into_iter().take(4).collect()
    };
    let mut candidates: Vec<(VertexId, VertexId)> = Vec::new();
    for &hub in &hubs {
        for candidate in kg.vertices().filter(|&v| v != hub).take(12) {
            candidates.push((hub, candidate));
        }
    }
    let queries: Vec<PathQuery> = candidates
        .iter()
        .map(|&(a, b)| PathQuery::new(a, b, hop_limit))
        .collect();
    println!(
        "scoring {} candidate pairs with k = {hop_limit}",
        queries.len()
    );

    // Extract features with a streaming sink: only per-length counts are kept, never the
    // paths themselves.
    let mut features: Vec<PairFeatures> = vec![
        PairFeatures {
            paths_by_length: vec![0; hop_limit as usize + 1]
        };
        queries.len()
    ];
    {
        let mut sink = FeatureSink {
            features: &mut features,
        };
        let engine = BatchEngine::builder()
            .algorithm(Algorithm::BatchEnumPlus)
            .build();
        let stats = engine.run_with_sink(&kg, &queries, &mut sink);
        println!(
            "feature extraction: clusters={} shared_subqueries={} time={:.3?}",
            stats.num_clusters,
            stats.num_shared_subqueries,
            stats.total_time()
        );
    }

    // Report the most promising candidate relations.
    let mut ranked: Vec<(usize, f64)> = features
        .iter()
        .enumerate()
        .map(|(i, f)| (i, f.score()))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\ntop candidate relations by path-count score:");
    for &(i, score) in ranked.iter().take(8) {
        let (a, b) = candidates[i];
        println!(
            "  {a} -> {b}: score {score:.2} ({} connecting paths, by length {:?})",
            features[i].total(),
            &features[i].paths_by_length[1..]
        );
    }
}

/// Sink translating enumerated paths into per-length counts per query.
struct FeatureSink<'a> {
    features: &'a mut Vec<PairFeatures>,
}

impl PathSink for FeatureSink<'_> {
    fn accept(&mut self, query: usize, path: &[VertexId]) -> SinkFlow {
        let hops = path.len() - 1;
        let feature = &mut self.features[query];
        if hops < feature.paths_by_length.len() {
            feature.paths_by_length[hops] += 1;
        }
        SinkFlow::Continue
    }
}
