//! Quickstart: build a graph, pose a batch of HC-s-t path queries, run every algorithm.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

// Stdout is the product here: examples narrate what they compute.
#![allow(clippy::print_stdout)]

use hcsp::prelude::*;

fn main() {
    // The running example of the paper (Fig. 1): 16 vertices.
    let edges: &[(u32, u32)] = &[
        (0, 1),
        (0, 4),
        (2, 1),
        (2, 4),
        (5, 1),
        (1, 7),
        (1, 8),
        (7, 10),
        (7, 8),
        (10, 12),
        (12, 11),
        (12, 13),
        (4, 9),
        (9, 3),
        (9, 15),
        (9, 8),
        (3, 6),
        (15, 6),
        (6, 11),
        (6, 13),
        (6, 14),
    ];
    let graph = DiGraph::from_edge_list(16, edges).expect("valid edge list");
    println!(
        "graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // The batch of queries from Fig. 1.
    let queries = vec![
        PathQuery::new(0u32, 11u32, 5),
        PathQuery::new(2u32, 13u32, 5),
        PathQuery::new(5u32, 12u32, 5),
        PathQuery::new(4u32, 14u32, 4),
        PathQuery::new(9u32, 14u32, 3),
    ];

    // Run the contributed algorithm and print every result path.
    let engine = BatchEngine::builder()
        .algorithm(Algorithm::BatchEnumPlus)
        .gamma(0.5)
        .build();
    let outcome = engine.run(&graph, &queries);

    for (id, query) in queries.iter().enumerate() {
        println!("\n{query} -> {} HC-s-t paths", outcome.count(id));
        for path in outcome.paths[id].iter() {
            let pretty: Vec<String> = path.iter().map(|v| v.to_string()).collect();
            println!("  ({})", pretty.join(", "));
        }
    }

    // The typed request/response surface: one mixed-mode batch, one shared index, each
    // query paying only for the answer shape it asked for.
    let specs = vec![
        QuerySpec::exists(queries[0]),     // "is there any path at all?"
        QuerySpec::count(queries[1]),      // "how many?"
        QuerySpec::first_k(queries[2], 2), // "show me two examples"
        QuerySpec::collect(queries[3]),    // "give me everything"
    ];
    let outcome = engine.run_specs(&graph, &specs);
    println!("\nmixed-mode batch (one shared index, per-query result modes):");
    for (spec, response) in specs.iter().zip(&outcome.responses) {
        match response {
            QueryResponse::Exists(b) => println!("  {spec} -> exists: {b}"),
            QueryResponse::Count(c) => println!("  {spec} -> count: {c}"),
            QueryResponse::Paths(paths) => println!("  {spec} -> {} path(s)", paths.len()),
        }
    }

    // Compare all five evaluated algorithms on the same batch.
    println!("\nalgorithm comparison (same results, different work):");
    for algorithm in Algorithm::ALL {
        let engine = BatchEngine::with_algorithm(algorithm);
        let (counts, stats) = engine.run_counting(&graph, &queries);
        println!(
            "  {:<11} total_paths={:<4} expanded_vertices={:<6} scanned_edges={:<6} \
             clusters={} shared_subqueries={} time={:.3?}",
            algorithm.to_string(),
            counts.iter().sum::<u64>(),
            stats.counters.expanded_vertices,
            stats.counters.scanned_edges,
            stats.num_clusters,
            stats.num_shared_subqueries,
            stats.total_time(),
        );
    }
}
