//! Fraud detection in an e-commerce transaction network (the paper's first motivating
//! application, after Qiu et al. [13]) — ported to the typed request/response API.
//!
//! A cycle in a transaction network is a strong fraud signal. When a new transaction
//! `t → s` arrives, every *existing* hop-constrained simple path `s → t` closes a cycle
//! through the new edge — but the screen itself only needs a yes/no per transaction, not
//! the full (potentially astronomical) path set. That is exactly
//! [`ResultMode::Exists`]: the whole burst is screened in one mixed batch against one
//! shared index, with zero enumeration for probes the index can answer outright. Only
//! the *flagged* transactions then pay for evidence, and only `FirstK(3)` of it — the
//! first few concrete cycles an analyst needs, enumerated with an early-terminating
//! search instead of a full materialisation.
//!
//! ```bash
//! cargo run --release --example fraud_detection
//! ```

// Stdout is the product here: examples narrate what they compute.
#![allow(clippy::print_stdout)]

use hcsp::prelude::*;
use hcsp::workload::{Dataset, DatasetScale};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One incoming transaction `from → to` (an edge about to be added to the network).
#[derive(Debug, Clone, Copy)]
struct Transaction {
    from: VertexId,
    to: VertexId,
}

/// How many example cycles to materialise per flagged transaction.
const EVIDENCE_CYCLES: usize = 3;

fn main() {
    // Use the Epinions-like analog as the historical transaction network.
    let network = Dataset::EP.build(DatasetScale::Tiny);
    println!(
        "transaction network: {} accounts, {} past transactions",
        network.num_vertices(),
        network.num_edges()
    );

    // A burst of incoming transactions (simulated): each will be screened for the cycles
    // it would close, up to `k` hops long.
    let hop_limit = 4;
    let mut rng = StdRng::seed_from_u64(2024);
    let n = network.num_vertices();
    let burst: Vec<Transaction> = (0..40)
        .map(|_| Transaction {
            from: VertexId::new(rng.gen_range(0..n)),
            to: VertexId::new(rng.gen_range(0..n)),
        })
        .filter(|t| t.from != t.to)
        .collect();

    // Screening transaction (from -> to) = "does any HC path to -> from exist in the
    // current network?" — an existence probe, not an enumeration.
    let screen: Vec<QuerySpec> = burst
        .iter()
        .map(|t| QuerySpec::exists(PathQuery::new(t.to, t.from, hop_limit)))
        .collect();

    // A long-lived engine: the screening batch builds the shared index, the follow-up
    // evidence batch reuses it (index_reuse() shows the hit).
    let mut engine = Engine::new(network, BatchEngine::default());
    let screened = engine.run_specs(&screen);
    let flagged: Vec<usize> = (0..burst.len())
        .filter(|&i| screened.responses[i].exists())
        .collect();
    println!(
        "screened {} transactions in one Exists batch: {} flagged \
         (search steps: {}, paths enumerated: {})",
        burst.len(),
        flagged.len(),
        screened.stats.counters.expanded_vertices,
        screened.stats.counters.produced_paths,
    );

    // Evidence pass: the first few concrete cycles per flagged transaction only.
    let evidence_specs: Vec<QuerySpec> = flagged
        .iter()
        .map(|&i| {
            QuerySpec::first_k(
                PathQuery::new(burst[i].to, burst[i].from, hop_limit),
                EVIDENCE_CYCLES,
            )
        })
        .collect();
    let evidence = engine.run_specs(&evidence_specs);
    for (slot, &i) in flagged.iter().enumerate().take(5) {
        let t = burst[i];
        let cycles = evidence.responses[slot]
            .paths()
            .expect("FirstK responses carry paths");
        println!(
            "  ALERT: transaction {} -> {} closes cycles of <= {} hops; e.g. {}",
            t.from,
            t.to,
            hop_limit + 1,
            cycle_description(cycles, t),
        );
    }
    println!(
        "evidence pass: first {} cycle(s) per flagged transaction \
         (index reuse: {} rebuild(s), {} hit(s))",
        EVIDENCE_CYCLES,
        engine.index_reuse().rebuilds,
        engine.index_reuse().hits,
    );
    println!(
        "batch statistics: clusters={} shared_subqueries={} cache_splices={} time={:.3?}",
        evidence.stats.num_clusters,
        evidence.stats.num_shared_subqueries,
        evidence.stats.counters.cache_splices,
        evidence.stats.total_time()
    );
}

/// Renders the shortest of the evidence cycles a flagged transaction would close.
fn cycle_description(cycles: &PathSet, t: Transaction) -> String {
    let shortest = cycles
        .iter()
        .min_by_key(|p| p.len())
        .expect("flagged transactions have at least one evidence cycle");
    let mut cycle: Vec<String> = shortest.iter().map(|v| v.to_string()).collect();
    cycle.push(t.to.to_string());
    cycle.join(" -> ")
}
