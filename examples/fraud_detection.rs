//! Fraud detection in an e-commerce transaction network (the paper's first motivating
//! application, after Qiu et al. [13]).
//!
//! A cycle in a transaction network is a strong fraud signal. When a new transaction
//! `t → s` arrives, every *existing* hop-constrained simple path `s → t` closes a cycle
//! through the new edge, so the fraud screen is exactly an HC-s-t path query per incoming
//! transaction. Transactions arrive in bursts, so the screen is naturally a *batch* of
//! HC-s-t path queries — the scenario BatchEnum is designed for.
//!
//! ```bash
//! cargo run --release --example fraud_detection
//! ```

use hcsp::prelude::*;
use hcsp::workload::{Dataset, DatasetScale};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One incoming transaction `from → to` (an edge about to be added to the network).
#[derive(Debug, Clone, Copy)]
struct Transaction {
    from: VertexId,
    to: VertexId,
}

fn main() {
    // Use the Epinions-like analog as the historical transaction network.
    let network = Dataset::EP.build(DatasetScale::Tiny);
    println!(
        "transaction network: {} accounts, {} past transactions",
        network.num_vertices(),
        network.num_edges()
    );

    // A burst of incoming transactions (simulated): each will be screened for the cycles
    // it would close, up to `k` hops long.
    let hop_limit = 4;
    let mut rng = StdRng::seed_from_u64(2024);
    let n = network.num_vertices();
    let burst: Vec<Transaction> = (0..40)
        .map(|_| Transaction {
            from: VertexId::new(rng.gen_range(0..n)),
            to: VertexId::new(rng.gen_range(0..n)),
        })
        .filter(|t| t.from != t.to)
        .collect();

    // Screening transaction (from -> to) = enumerate HC paths to -> from in the existing
    // network; each result path plus the new edge is a cycle of length <= k + 1.
    let queries: Vec<PathQuery> = burst
        .iter()
        .map(|t| PathQuery::new(t.to, t.from, hop_limit))
        .collect();

    let engine = BatchEngine::builder()
        .algorithm(Algorithm::BatchEnumPlus)
        .build();
    let outcome = engine.run(&network, &queries);

    let mut flagged = 0usize;
    let mut total_cycles = 0usize;
    for (i, t) in burst.iter().enumerate() {
        let cycles = outcome.count(i);
        total_cycles += cycles;
        if cycles > 0 {
            flagged += 1;
            if flagged <= 5 {
                println!(
                    "  ALERT: transaction {} -> {} closes {} cycle(s) of <= {} hops; shortest: {}",
                    t.from,
                    t.to,
                    cycles,
                    hop_limit + 1,
                    shortest_cycle_description(&outcome, i, *t)
                );
            }
        }
    }
    println!(
        "\nscreened {} transactions in a single batch: {} flagged, {} total cycles found",
        burst.len(),
        flagged,
        total_cycles
    );
    println!(
        "batch statistics: clusters={} shared_subqueries={} cache_splices={} time={:.3?}",
        outcome.stats.num_clusters,
        outcome.stats.num_shared_subqueries,
        outcome.stats.counters.cache_splices,
        outcome.stats.total_time()
    );
}

/// Renders the shortest cycle a flagged transaction would close.
fn shortest_cycle_description(outcome: &BatchOutcome, query: usize, t: Transaction) -> String {
    let shortest = outcome.paths[query]
        .iter()
        .min_by_key(|p| p.len())
        .expect("flagged transactions have at least one path");
    let mut cycle: Vec<String> = shortest.iter().map(|v| v.to_string()).collect();
    cycle.push(t.to.to_string());
    cycle.join(" -> ")
}
