//! Pathway queries in a biological interaction network (the paper's second motivating
//! application, after Krishnamurthy et al. [18] and Leser [19]).
//!
//! A pathway query asks for the chains of interactions between pairs of substances
//! (metabolites, proteins). Analysts typically submit a *panel* of substance pairs at
//! once — e.g. every (signal, response) pair of an experiment — so the workload is again a
//! batch of HC-s-t path queries over a shared interaction network.
//!
//! ```bash
//! cargo run --release --example biological_pathways
//! ```

// Stdout is the product here: examples narrate what they compute.
#![allow(clippy::print_stdout)]

use hcsp::prelude::*;
use hcsp::workload::{Dataset, DatasetScale};

fn main() {
    // The Skitter analog stands in for a mid-size interaction network.
    let network = Dataset::SK.build(DatasetScale::Tiny);
    println!(
        "interaction network: {} substances, {} directed interactions",
        network.num_vertices(),
        network.num_edges()
    );

    // Panel of substance pairs: a few "signal" substances against a few "response"
    // substances, with a hop constraint of 5 interactions.
    let hop_limit = 5;
    let signals: Vec<VertexId> = network
        .vertices()
        .filter(|v| v.raw() % 97 == 3)
        .take(4)
        .collect();
    let responses: Vec<VertexId> = network
        .vertices()
        .filter(|v| v.raw() % 89 == 7)
        .take(4)
        .collect();
    let mut queries = Vec::new();
    let mut pairs = Vec::new();
    for &s in &signals {
        for &r in &responses {
            if s != r {
                pairs.push((s, r));
                queries.push(PathQuery::new(s, r, hop_limit));
            }
        }
    }
    println!(
        "pathway panel: {} substance pairs, k = {hop_limit}",
        queries.len()
    );

    let engine = BatchEngine::builder()
        .algorithm(Algorithm::BatchEnumPlus)
        .gamma(0.4)
        .build();
    let outcome = engine.run(&network, &queries);

    println!("\npathways found per pair:");
    for (i, &(s, r)) in pairs.iter().enumerate() {
        let count = outcome.count(i);
        if count == 0 {
            println!("  {s} ~> {r}: no pathway within {hop_limit} interactions");
            continue;
        }
        let shortest = outcome.paths[i].iter().map(|p| p.len() - 1).min().unwrap();
        let longest = outcome.paths[i].iter().map(|p| p.len() - 1).max().unwrap();
        println!(
            "  {s} ~> {r}: {count} pathway(s), interaction chain length {shortest}..={longest}"
        );
        if let Some(example) = outcome.paths[i].iter().min_by_key(|p| p.len()) {
            let chain: Vec<String> = example.iter().map(|v| v.to_string()).collect();
            println!("      e.g. {}", chain.join(" -> "));
        }
    }

    println!(
        "\nbatch processed with {} clusters, {} shared sub-queries, {:.3?} total",
        outcome.stats.num_clusters,
        outcome.stats.num_shared_subqueries,
        outcome.stats.total_time()
    );
}
